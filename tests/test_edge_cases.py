"""Edge cases and failure injection across modules.

Deliberate misuse, degenerate workloads, and boundary parameters —
every branch here should fail loudly (typed exceptions) or degrade
gracefully (empty results), never corrupt state.
"""

import numpy as np
import pytest

from repro.core.greedy import GreedyButterflyScheme, GreedyHypercubeScheme
from repro.core.qnetwork import ExplicitLevelledSpec, HypercubeQSpec
from repro.errors import ConfigurationError, SimulationError
from repro.sim.eventsim import simulate_paths_event_driven
from repro.sim.feedforward import (
    EXIT,
    simulate_butterfly_greedy,
    simulate_hypercube_greedy,
    simulate_markovian,
)
from repro.traffic.workload import TrafficSample


def _empty_sample(horizon=10.0):
    z = np.zeros(0, dtype=np.int64)
    return TrafficSample(np.zeros(0), z, z.copy(), horizon)


class TestEmptyWorkloads:
    def test_hypercube_empty(self, cube3):
        res = simulate_hypercube_greedy(cube3, _empty_sample())
        assert res.delivery.shape == (0,)
        assert res.hops.shape == (0,)

    def test_butterfly_empty(self, bf3):
        res = simulate_butterfly_greedy(bf3, _empty_sample())
        assert res.delivery.shape == (0,)

    def test_markovian_empty(self, cube3):
        spec = HypercubeQSpec(cube3, 0.5)
        res = simulate_markovian(spec, np.zeros(0), np.zeros(0, dtype=np.int64))
        assert res.exit_times.shape == (0,)

    def test_event_driven_empty(self):
        res = simulate_paths_event_driven(4, np.zeros(0), [])
        assert res.delivery.shape == (0,)

    def test_empty_arc_log(self, cube3):
        res = simulate_hypercube_greedy(
            cube3, _empty_sample(), record_arc_log=True
        )
        assert res.arc_log.num_hops == 0


class TestSinglePacket:
    def test_single_zero_hop(self, cube3):
        s = TrafficSample(np.array([1.5]), np.array([3]), np.array([3]), 10.0)
        res = simulate_hypercube_greedy(cube3, s)
        assert res.delivery[0] == 1.5

    def test_single_max_distance(self, cube3):
        s = TrafficSample(np.array([0.0]), np.array([0]), np.array([7]), 10.0)
        res = simulate_hypercube_greedy(cube3, s, record_arc_log=True)
        assert res.delivery[0] == pytest.approx(3.0)
        # arc log shows contiguous occupation
        order = np.argsort(res.arc_log.t_in)
        np.testing.assert_allclose(
            res.arc_log.t_out[order][:-1], res.arc_log.t_in[order][1:]
        )


class TestDegenerateParameters:
    def test_d1_hypercube_works(self):
        scheme = GreedyHypercubeScheme(d=1, lam=0.8, p=0.5)
        t = scheme.measure_delay(300.0, rng=1)
        assert scheme.delay_lower_bound() * 0.9 <= t <= scheme.delay_upper_bound() * 1.1

    def test_d1_butterfly_works(self):
        scheme = GreedyButterflyScheme(d=1, lam=0.8, p=0.5)
        t = scheme.measure_delay(300.0, rng=2)
        assert t <= scheme.delay_upper_bound() * 1.1

    def test_p_one_scheme(self):
        scheme = GreedyHypercubeScheme(d=3, lam=0.5, p=1.0)
        res = scheme.run(100.0, rng=3)
        assert np.all(res.hops == 3)  # all antipodal

    def test_butterfly_p_zero(self):
        # p = 0: all straight arcs; vertical arcs idle
        scheme = GreedyButterflyScheme(d=3, lam=0.8, p=0.0)
        res = scheme.run(200.0, rng=4, record_arc_log=True)
        kinds = res.arc_log.arc % 2
        assert np.all(kinds == 0)

    def test_tiny_horizon(self):
        scheme = GreedyHypercubeScheme(d=3, lam=1.0, p=0.5)
        res = scheme.run(0.5, rng=5)  # likely a handful of packets
        assert np.all(res.delivery >= res.sample.times)


class TestMalformedInputs:
    def test_markovian_exit_everywhere_spec(self):
        # a spec whose decisions are always EXIT: single-hop network
        spec = ExplicitLevelledSpec(levels=[0, 0], routing={})
        times = np.array([0.0, 0.1])
        arcs = np.array([0, 1])
        res = simulate_markovian(spec, times, arcs)
        np.testing.assert_allclose(res.exit_times, times + 1.0)
        assert np.all(res.hops == 1)

    def test_event_driven_bad_arc_id(self):
        with pytest.raises(SimulationError):
            simulate_paths_event_driven(2, np.array([0.0]), [[5]])

    def test_feedforward_wrong_sample_width(self, cube3):
        with pytest.raises(ConfigurationError):
            TrafficSample(np.array([0.0]), np.array([0, 1]), np.array([1]), 5.0)

    def test_qspec_wrong_arc_for_replay(self, cube3):
        spec = HypercubeQSpec(cube3, 0.5)
        times = np.array([0.0])
        arcs = np.array([0])
        with pytest.raises(SimulationError):
            simulate_markovian(spec, times, arcs, decisions={})

    def test_explicit_spec_exit_only_targets(self):
        spec = ExplicitLevelledSpec(
            levels=[0, 1], routing={0: ([EXIT, 1], [0.5, 0.5])}
        )
        gen = np.random.default_rng(0)
        dec = spec.draw_decisions(0, 1000, gen)
        assert set(np.unique(dec)) == {EXIT, 1}


class TestNumericalEdges:
    def test_identical_birth_times_mass(self, cube3):
        # 50 packets all born at t=0 from the same node to the same place
        n = 50
        s = TrafficSample(
            np.zeros(n),
            np.zeros(n, dtype=np.int64),
            np.full(n, 1, dtype=np.int64),
            10.0,
        )
        res = simulate_hypercube_greedy(cube3, s)
        # pure M/D/1 busy period: deliveries at 1, 2, ..., 50
        np.testing.assert_allclose(np.sort(res.delivery), np.arange(1, n + 1))

    def test_large_times_no_precision_loss(self, cube3):
        # birth times ~1e9: unit-service arithmetic must stay exact
        base = 1.0e9
        s = TrafficSample(
            np.array([base, base]),
            np.array([0, 0]),
            np.array([1, 1]),
            base + 10.0,
        )
        res = simulate_hypercube_greedy(cube3, s)
        np.testing.assert_allclose(np.sort(res.delivery), [base + 1.0, base + 2.0])

    def test_markovian_p_near_one(self, cube4):
        spec = HypercubeQSpec(cube4, 0.999)
        times, arcs = spec.sample_external_arrivals(0.3, 100.0, rng=6)
        res = simulate_markovian(spec, times, arcs, rng=7)
        # nearly every packet crosses all remaining dimensions
        assert res.hops.mean() > 3.5
