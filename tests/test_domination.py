"""Sample-path domination: Lemmas 7, 9, 10 and Proposition 11.

These tests execute the paper's proof technique literally: couple a
FIFO network and a PS network on the same sample path (same external
arrivals, same position-indexed routing decisions) and check that

* every network departure of FIFO precedes the corresponding PS one
  (``B(t) >= B~(t)`` for all t — Lemma 9 for Fig. 2, Lemma 10 for Q);
* the total population satisfies ``N(t) <= N~(t)`` pathwise under the
  coupling (which implies Prop 11's stochastic ordering).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qnetwork import (
    ButterflyRSpec,
    ExplicitLevelledSpec,
    HypercubeQSpec,
)
from repro.sim.feedforward import EXIT, simulate_markovian
from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube


def _coupled_pair(spec, times, arcs, seed):
    """Run FIFO, record decisions, replay them under PS."""
    fifo = simulate_markovian(
        spec, times, arcs, rng=seed, record_decisions=True
    )
    ps = simulate_markovian(
        spec, times, arcs, discipline="ps", decisions=fifo.decisions
    )
    return fifo, ps


def _assert_departures_dominate(fifo, ps):
    """k-th network departure of FIFO <= k-th of PS, i.e. B(t) >= B~(t)."""
    ef = np.sort(fifo.exit_times)
    ep = np.sort(ps.exit_times)
    assert ef.shape == ep.shape
    assert np.all(ef <= ep + 1e-9)


def _population_curve(times_in, times_out, grid):
    """N(t) on a grid from external arrival and exit epochs."""
    return np.searchsorted(np.sort(times_in), grid, side="right") - np.searchsorted(
        np.sort(times_out), grid, side="right"
    )


class TestLemma9Fig2:
    """The three-server network of Fig. 2."""

    def _spec(self):
        return ExplicitLevelledSpec(
            levels=[0, 0, 1],
            routing={
                0: ([2, EXIT], [0.6, 0.4]),
                1: ([2, EXIT], [0.7, 0.3]),
            },
        )

    def test_departure_domination(self, rng):
        spec = self._spec()
        n = 200
        times = np.sort(rng.random(n) * 100.0)
        arcs = rng.integers(0, 2, size=n)
        fifo, ps = _coupled_pair(spec, times, arcs, seed=1)
        _assert_departures_dominate(fifo, ps)

    def test_population_domination_on_grid(self, rng):
        spec = self._spec()
        n = 300
        times = np.sort(rng.random(n) * 80.0)
        arcs = rng.integers(0, 2, size=n)
        fifo, ps = _coupled_pair(spec, times, arcs, seed=2)
        grid = np.linspace(0, 200, 2001)
        nf = _population_curve(times, fifo.exit_times, grid)
        np_ = _population_curve(times, ps.exit_times, grid)
        assert np.all(nf <= np_)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_domination_random_traffic(self, seed):
        spec = self._spec()
        gen = np.random.default_rng(seed)
        n = int(gen.integers(1, 120))
        times = np.sort(gen.random(n) * 50.0)
        arcs = gen.integers(0, 2, size=n)
        fifo, ps = _coupled_pair(spec, times, arcs, seed=seed)
        _assert_departures_dominate(fifo, ps)


class TestLemma10NetworkQ:
    @pytest.mark.parametrize("d,p,seed", [(3, 0.5, 3), (4, 0.5, 4), (4, 0.3, 5)])
    def test_departure_domination(self, d, p, seed):
        cube = Hypercube(d)
        spec = HypercubeQSpec(cube, p)
        times, arcs = spec.sample_external_arrivals(1.2, 150.0, rng=seed)
        fifo, ps = _coupled_pair(spec, times, arcs, seed=seed + 100)
        _assert_departures_dominate(fifo, ps)

    def test_prop11_population_pathwise(self):
        cube = Hypercube(4)
        spec = HypercubeQSpec(cube, 0.5)
        times, arcs = spec.sample_external_arrivals(1.4, 200.0, rng=21)
        fifo, ps = _coupled_pair(spec, times, arcs, seed=22)
        grid = np.linspace(0, 400, 4001)
        nf = _population_curve(times, fifo.exit_times, grid)
        np_ = _population_curve(times, ps.exit_times, grid)
        assert np.all(nf <= np_)

    def test_mean_delay_ordered(self):
        # Prop 11 corollary: mean FIFO delay <= mean PS delay.
        cube = Hypercube(4)
        spec = HypercubeQSpec(cube, 0.5)
        times, arcs = spec.sample_external_arrivals(1.5, 400.0, rng=31)
        fifo, ps = _coupled_pair(spec, times, arcs, seed=32)
        assert (fifo.exit_times - times).mean() <= (ps.exit_times - times).mean()

    def test_per_arc_counts_identical_under_coupling(self):
        # the coupling argument requires each arc to serve the same
        # number of customers in both networks
        cube = Hypercube(3)
        spec = HypercubeQSpec(cube, 0.5)
        times, arcs = spec.sample_external_arrivals(1.0, 100.0, rng=41)
        fifo = simulate_markovian(
            spec, times, arcs, rng=42, record_decisions=True, record_arc_log=True
        )
        ps = simulate_markovian(
            spec,
            times,
            arcs,
            discipline="ps",
            decisions=fifo.decisions,
            record_arc_log=True,
        )
        cf = np.bincount(fifo.arc_log.arc, minlength=spec.num_arcs)
        cp = np.bincount(ps.arc_log.arc, minlength=spec.num_arcs)
        np.testing.assert_array_equal(cf, cp)

    def test_per_arc_streams_are_delayed_versions(self):
        # Lemma 9/10 core: each arc's PS departure stream is a delayed
        # version of its FIFO stream.
        cube = Hypercube(3)
        spec = HypercubeQSpec(cube, 0.5)
        times, arcs = spec.sample_external_arrivals(1.2, 120.0, rng=51)
        fifo = simulate_markovian(
            spec, times, arcs, rng=52, record_decisions=True, record_arc_log=True
        )
        ps = simulate_markovian(
            spec,
            times,
            arcs,
            discipline="ps",
            decisions=fifo.decisions,
            record_arc_log=True,
        )
        for arc in range(spec.num_arcs):
            mf = fifo.arc_log.arc == arc
            mp = ps.arc_log.arc == arc
            dep_f = np.sort(fifo.arc_log.t_out[mf])
            dep_p = np.sort(ps.arc_log.t_out[mp])
            assert np.all(dep_f <= dep_p + 1e-9)


class TestButterflyDomination:
    def test_network_r_domination(self):
        bf = Butterfly(3)
        spec = ButterflyRSpec(bf, 0.5)
        gen = np.random.default_rng(61)
        n = 400
        times = np.sort(gen.random(n) * 120.0)
        arcs = gen.integers(0, 16, size=n)  # level-0 arcs
        fifo, ps = _coupled_pair(spec, times, arcs, seed=62)
        _assert_departures_dominate(fifo, ps)
