"""Tests for the event-driven engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.eventsim import (
    hypercube_packet_paths,
    simulate_paths_event_driven,
)
from repro.traffic.workload import TrafficSample


class TestEventDrivenFifo:
    def test_single_server_queue(self):
        # 3 packets through one arc
        res = simulate_paths_event_driven(
            1, np.array([0.0, 0.0, 5.0]), [[0], [0], [0]]
        )
        np.testing.assert_allclose(res.delivery, [1.0, 2.0, 6.0])

    def test_tandem_line(self):
        # arc 0 then arc 1: pipeline
        res = simulate_paths_event_driven(
            2, np.array([0.0, 0.0]), [[0, 1], [0, 1]]
        )
        np.testing.assert_allclose(np.sort(res.delivery), [2.0, 3.0])

    def test_empty_path_delivered_at_birth(self):
        res = simulate_paths_event_driven(1, np.array([4.2]), [[]])
        assert res.delivery[0] == pytest.approx(4.2)

    def test_tie_priority_by_pid(self):
        # both arrive at t=1 at arc 0: pid 0 served first
        res = simulate_paths_event_driven(1, np.array([1.0, 1.0]), [[0], [0]])
        np.testing.assert_allclose(res.delivery, [2.0, 3.0])

    def test_cyclic_server_graph_ok(self):
        # packet A: arc0 -> arc1 ; packet B: arc1 -> arc0 (not levelled)
        res = simulate_paths_event_driven(
            2, np.array([0.0, 0.0]), [[0, 1], [1, 0]]
        )
        np.testing.assert_allclose(res.delivery, [2.0, 2.0])

    def test_arc_log(self):
        res = simulate_paths_event_driven(
            2, np.array([0.0]), [[0, 1]], record_arc_log=True
        )
        assert res.arc_log.num_hops == 2
        np.testing.assert_allclose(res.arc_log.t_in, [0.0, 1.0])
        np.testing.assert_allclose(res.arc_log.t_out, [1.0, 2.0])

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            simulate_paths_event_driven(1, np.array([0.0]), [[0], [0]])
        with pytest.raises(ConfigurationError):
            simulate_paths_event_driven(
                1, np.array([0.0]), [[0]], discipline="bad"
            )

    def test_custom_service_time(self):
        res = simulate_paths_event_driven(
            1, np.array([0.0, 0.0]), [[0], [0]], service=2.0
        )
        np.testing.assert_allclose(res.delivery, [2.0, 4.0])


class TestEventDrivenPS:
    def test_ps_sharing_pair(self):
        res = simulate_paths_event_driven(
            1, np.array([0.0, 0.5]), [[0], [0]], discipline="ps"
        )
        np.testing.assert_allclose(res.delivery, [1.5, 2.0])

    def test_ps_tandem(self):
        # lone packet: PS == FIFO
        res = simulate_paths_event_driven(
            2, np.array([0.0]), [[0, 1]], discipline="ps"
        )
        assert res.delivery[0] == pytest.approx(2.0)

    def test_ps_triple_share(self):
        res = simulate_paths_event_driven(
            1, np.zeros(3), [[0], [0], [0]], discipline="ps"
        )
        np.testing.assert_allclose(res.delivery, [3.0, 3.0, 3.0])


class TestPathConstruction:
    def test_canonical_paths(self, cube3):
        s = TrafficSample(
            np.array([0.0]), np.array([0]), np.array([0b101]), 10.0
        )
        paths = hypercube_packet_paths(cube3, s)
        assert paths == [[cube3.arc_index(0, 0), cube3.arc_index(1, 2)]]

    def test_custom_orders(self, cube3):
        s = TrafficSample(
            np.array([0.0]), np.array([0]), np.array([0b101]), 10.0
        )
        paths = hypercube_packet_paths(cube3, s, orders=[[2, 0]])
        assert paths == [[cube3.arc_index(0, 2), cube3.arc_index(4, 0)]]

    def test_rejects_bad_order(self, cube3):
        s = TrafficSample(
            np.array([0.0]), np.array([0]), np.array([0b101]), 10.0
        )
        with pytest.raises(ConfigurationError):
            hypercube_packet_paths(cube3, s, orders=[[0, 1]])
