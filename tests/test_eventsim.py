"""Tests for the event-driven engine."""

import tracemalloc

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.eventsim import (
    FlatPaths,
    flatten_paths,
    hypercube_packet_paths,
    simulate_paths_event_driven,
    simulate_paths_event_driven_batch,
)
from repro.traffic.workload import TrafficSample


def _random_system(rng, num_arcs=12, n=160, max_hops=5, span=40.0):
    """A random cyclic-path system: births plus arbitrary arc paths."""
    births = np.sort(rng.uniform(0.0, span, size=n))
    hops = rng.integers(0, max_hops + 1, size=n)
    paths = [list(rng.integers(0, num_arcs, size=h)) for h in hops]
    return births, paths


class TestEventDrivenFifo:
    def test_single_server_queue(self):
        # 3 packets through one arc
        res = simulate_paths_event_driven(
            1, np.array([0.0, 0.0, 5.0]), [[0], [0], [0]]
        )
        np.testing.assert_allclose(res.delivery, [1.0, 2.0, 6.0])

    def test_tandem_line(self):
        # arc 0 then arc 1: pipeline
        res = simulate_paths_event_driven(
            2, np.array([0.0, 0.0]), [[0, 1], [0, 1]]
        )
        np.testing.assert_allclose(np.sort(res.delivery), [2.0, 3.0])

    def test_empty_path_delivered_at_birth(self):
        res = simulate_paths_event_driven(1, np.array([4.2]), [[]])
        assert res.delivery[0] == pytest.approx(4.2)

    def test_tie_priority_by_pid(self):
        # both arrive at t=1 at arc 0: pid 0 served first
        res = simulate_paths_event_driven(1, np.array([1.0, 1.0]), [[0], [0]])
        np.testing.assert_allclose(res.delivery, [2.0, 3.0])

    def test_cyclic_server_graph_ok(self):
        # packet A: arc0 -> arc1 ; packet B: arc1 -> arc0 (not levelled)
        res = simulate_paths_event_driven(
            2, np.array([0.0, 0.0]), [[0, 1], [1, 0]]
        )
        np.testing.assert_allclose(res.delivery, [2.0, 2.0])

    def test_arc_log(self):
        res = simulate_paths_event_driven(
            2, np.array([0.0]), [[0, 1]], record_arc_log=True
        )
        assert res.arc_log.num_hops == 2
        np.testing.assert_allclose(res.arc_log.t_in, [0.0, 1.0])
        np.testing.assert_allclose(res.arc_log.t_out, [1.0, 2.0])

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            simulate_paths_event_driven(1, np.array([0.0]), [[0], [0]])
        with pytest.raises(ConfigurationError):
            simulate_paths_event_driven(
                1, np.array([0.0]), [[0]], discipline="bad"
            )

    def test_custom_service_time(self):
        res = simulate_paths_event_driven(
            1, np.array([0.0, 0.0]), [[0], [0]], service=2.0
        )
        np.testing.assert_allclose(res.delivery, [2.0, 4.0])


class TestEventDrivenPS:
    def test_ps_sharing_pair(self):
        res = simulate_paths_event_driven(
            1, np.array([0.0, 0.5]), [[0], [0]], discipline="ps"
        )
        np.testing.assert_allclose(res.delivery, [1.5, 2.0])

    def test_ps_tandem(self):
        # lone packet: PS == FIFO
        res = simulate_paths_event_driven(
            2, np.array([0.0]), [[0, 1]], discipline="ps"
        )
        assert res.delivery[0] == pytest.approx(2.0)

    def test_ps_triple_share(self):
        res = simulate_paths_event_driven(
            1, np.zeros(3), [[0], [0], [0]], discipline="ps"
        )
        np.testing.assert_allclose(res.delivery, [3.0, 3.0, 3.0])


class TestCoreModes:
    """The heap and windowed FIFO cores are interchangeable bit for bit."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_heap_and_window_cores_agree_exactly(self, seed):
        rng = np.random.default_rng(seed)
        births, paths = _random_system(rng)
        heap = simulate_paths_event_driven(
            12, births, paths, mode="heap", record_arc_log=True
        )
        win = simulate_paths_event_driven(
            12, births, paths, mode="windows", record_arc_log=True
        )
        auto = simulate_paths_event_driven(12, births, paths, mode="auto")
        assert np.array_equal(heap.delivery, win.delivery)
        assert np.array_equal(heap.delivery, auto.delivery)
        # the service history must agree hop for hop, not just at exit
        for log_a, log_b in ((heap.arc_log, win.arc_log),):
            order_a = np.lexsort((log_a.arc, log_a.pid, log_a.t_in))
            order_b = np.lexsort((log_b.arc, log_b.pid, log_b.t_in))
            for col in ("pid", "arc", "t_in", "t_out"):
                assert np.array_equal(
                    getattr(log_a, col)[order_a], getattr(log_b, col)[order_b]
                ), col

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            simulate_paths_event_driven(
                1, np.array([0.0]), [[0]], mode="turbo"
            )

    def test_ps_rejects_window_mode(self):
        with pytest.raises(ConfigurationError):
            simulate_paths_event_driven(
                1, np.array([0.0]), [[0]], discipline="ps", mode="windows"
            )


class TestBatchedCalendar:
    """R replications as one arc-offset calendar: per-replication
    results bit-identical to the sequential runs."""

    @pytest.mark.parametrize("discipline", ["fifo", "ps"])
    def test_batch_bit_identical_to_sequential(self, discipline):
        rng = np.random.default_rng(7)
        reps = [_random_system(rng) for _ in range(4)]
        batched = simulate_paths_event_driven_batch(
            12,
            [b for b, _ in reps],
            [p for _, p in reps],
            discipline=discipline,
        )
        for (births, paths), delivery in zip(reps, batched):
            solo = simulate_paths_event_driven(
                12, births, paths, discipline=discipline
            )
            assert np.array_equal(solo.delivery, delivery)

    @pytest.mark.parametrize("mode", ["heap", "windows"])
    def test_batch_modes_agree(self, mode):
        rng = np.random.default_rng(11)
        reps = [_random_system(rng) for _ in range(3)]
        batched = simulate_paths_event_driven_batch(
            12, [b for b, _ in reps], [p for _, p in reps], mode=mode
        )
        for (births, paths), delivery in zip(reps, batched):
            solo = simulate_paths_event_driven(12, births, paths)
            assert np.array_equal(solo.delivery, delivery)

    def test_empty_batch(self):
        assert simulate_paths_event_driven_batch(3, [], []) == []

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            simulate_paths_event_driven_batch(3, [np.zeros(1)], [])


class TestFlatPaths:
    def test_flatten_roundtrip(self):
        paths = [[0, 1], [], [2]]
        fp = flatten_paths(paths)
        assert fp.num_packets == 3
        assert [list(fp[i]) for i in range(3)] == paths
        assert list(fp.hops()) == [2, 0, 1]
        assert flatten_paths(fp) is fp

    def test_flat_paths_accepted_directly(self):
        fp = FlatPaths(
            np.array([0, 0], np.int64), np.array([0, 1, 2], np.int64)
        )
        res = simulate_paths_event_driven(1, np.array([0.0, 0.0]), fp)
        np.testing.assert_allclose(res.delivery, [1.0, 2.0])


class TestArcLogPreallocation:
    """The arc log is preallocated to exactly one row per hop — no
    growing Python lists, no over-allocation."""

    def test_exact_length_and_dtypes(self):
        rng = np.random.default_rng(3)
        births, paths = _random_system(rng)
        total = sum(len(p) for p in paths)
        res = simulate_paths_event_driven(
            12, births, paths, record_arc_log=True
        )
        log = res.arc_log
        assert log.num_hops == total
        for col, dtype in (
            ("pid", np.int64),
            ("arc", np.int64),
            ("t_in", np.float64),
            ("t_out", np.float64),
        ):
            arr = getattr(log, col)
            assert arr.shape == (total,)
            assert arr.dtype == dtype

    def test_log_memory_overhead_is_bounded(self):
        """Recording the log must cost O(total hops) extra memory —
        the four columns plus bounded slack, not a per-event pile of
        Python objects."""
        rng = np.random.default_rng(5)
        births, paths = _random_system(rng, num_arcs=24, n=4000, span=400.0)
        total = sum(len(p) for p in paths)
        simulate_paths_event_driven(24, births, paths)  # warm caches
        tracemalloc.start()
        simulate_paths_event_driven(24, births, paths)
        _, peak_plain = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        simulate_paths_event_driven(24, births, paths, record_arc_log=True)
        _, peak_logged = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        columns = 4 * 8 * total  # two int64 + two float64 rows per hop
        assert peak_logged - peak_plain <= 3 * columns + (1 << 16)


class TestPathConstruction:
    def test_canonical_paths(self, cube3):
        s = TrafficSample(
            np.array([0.0]), np.array([0]), np.array([0b101]), 10.0
        )
        paths = hypercube_packet_paths(cube3, s)
        assert paths == [[cube3.arc_index(0, 0), cube3.arc_index(1, 2)]]

    def test_custom_orders(self, cube3):
        s = TrafficSample(
            np.array([0.0]), np.array([0]), np.array([0b101]), 10.0
        )
        paths = hypercube_packet_paths(cube3, s, orders=[[2, 0]])
        assert paths == [[cube3.arc_index(0, 2), cube3.arc_index(4, 0)]]

    def test_rejects_bad_order(self, cube3):
        s = TrafficSample(
            np.array([0.0]), np.array([0]), np.array([0b101]), 10.0
        )
        with pytest.raises(ConfigurationError):
            hypercube_packet_paths(cube3, s, orders=[[0, 1]])
