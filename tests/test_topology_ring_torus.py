"""Unit tests for the ring and torus topologies."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.topology.ring import CLOCKWISE, COUNTER_CLOCKWISE, Ring
from repro.topology.torus import MINUS, PLUS, Torus


class TestRingConstruction:
    def test_basic_counts(self):
        ring = Ring(8)
        assert ring.n == 8
        assert ring.num_nodes == 8
        assert ring.num_arcs == 16
        assert ring.num_levels == 2
        assert ring.diameter == 4

    @pytest.mark.parametrize("bad", [0, 1, 2, -3, 3.5, "8", True])
    def test_rejects_bad_size(self, bad):
        with pytest.raises(TopologyError):
            Ring(bad)

    def test_equality_and_hash(self):
        assert Ring(8) == Ring(8)
        assert Ring(8) != Ring(16)
        assert hash(Ring(8)) == hash(Ring(8))


class TestRingArcs:
    def test_arc_round_trip(self):
        ring = Ring(5)
        for arc in ring.arcs():
            assert ring.arc(arc.index) == arc
        assert [a.index for a in ring.arcs()] == list(range(ring.num_arcs))

    def test_arc_geometry(self):
        ring = Ring(5)
        cw = ring.arc(ring.arc_index(3, CLOCKWISE))
        assert (cw.tail, cw.head, cw.level) == (3, 4, 0)
        wrap = ring.arc(ring.arc_index(4, CLOCKWISE))
        assert (wrap.tail, wrap.head) == (4, 0)
        ccw = ring.arc(ring.arc_index(0, COUNTER_CLOCKWISE))
        assert (ccw.tail, ccw.head, ccw.level) == (0, 4, 1)

    def test_level_slices_partition(self):
        ring = Ring(6)
        ids = [
            i
            for level in range(ring.num_levels)
            for i in range(*ring.level_slice(level).indices(ring.num_arcs))
        ]
        assert ids == list(range(ring.num_arcs))


class TestRingGreedy:
    @pytest.mark.parametrize("n", [5, 6, 9, 16])
    @pytest.mark.parametrize("variant", ["absolute", "clockwise"])
    def test_paths_reach_destination(self, n, variant):
        ring = Ring(n)
        for x in range(n):
            for z in range(n):
                path = ring.greedy_path_arcs(x, z, variant)
                assert len(path) == ring.greedy_hops(x, z, variant)
                cur = x
                for arc_id in path:
                    arc = ring.arc(arc_id)
                    assert arc.tail == cur
                    cur = arc.head
                assert cur == z

    def test_absolute_takes_shorter_direction(self):
        ring = Ring(8)
        assert ring.greedy_hops(0, 3) == 3
        assert ring.greedy_hops(0, 5) == 3  # counter-clockwise
        # the tie at n/2 breaks clockwise
        path = ring.greedy_path_arcs(0, 4)
        assert len(path) == 4
        assert all(ring.arc(a).level == CLOCKWISE for a in path)

    def test_clockwise_never_goes_back(self):
        ring = Ring(8)
        path = ring.greedy_path_arcs(0, 7, "clockwise")
        assert len(path) == 7
        assert all(ring.arc(a).level == CLOCKWISE for a in path)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError, match="absolute"):
            Ring(8).greedy_path_arcs(0, 1, "widdershins")
        with pytest.raises(ConfigurationError, match="absolute"):
            Ring(8).greedy_hops(0, 1, "widdershins")

    def test_distance_symmetry(self):
        ring = Ring(9)
        for x in range(9):
            for z in range(9):
                assert ring.distance(x, z) == ring.distance(z, x)
                assert ring.distance(x, z) <= ring.diameter


class TestTorusConstruction:
    def test_basic_counts(self):
        t = Torus(4, 2)
        assert t.side == 4 and t.d == 2
        assert t.num_nodes == 16
        assert t.num_arcs == 64  # 2 * d * side**d
        assert t.num_levels == 4
        assert t.diameter == 4

    @pytest.mark.parametrize("side,d", [(2, 2), (0, 1), (4, 0), (3.0, 2), (3, True)])
    def test_rejects_bad_parameters(self, side, d):
        with pytest.raises(TopologyError):
            Torus(side, d)

    def test_rejects_oversized(self):
        with pytest.raises(TopologyError, match="nodes"):
            Torus(100, 4)

    def test_equality_and_hash(self):
        assert Torus(4, 2) == Torus(4, 2)
        assert Torus(4, 2) != Torus(4, 3)
        assert hash(Torus(3, 2)) == hash(Torus(3, 2))


class TestTorusCoords:
    def test_coords_round_trip(self):
        t = Torus(3, 3)
        for v in range(t.num_nodes):
            assert t.node(t.coords(v)) == v

    def test_step_wraps(self):
        t = Torus(4, 2)
        v = t.node((3, 1))
        assert t.coords(t.step(v, 0, PLUS)) == (0, 1)
        assert t.coords(t.step(v, 1, MINUS)) == (3, 0)

    def test_arc_round_trip(self):
        t = Torus(3, 2)
        for arc in t.arcs():
            assert t.arc(arc.index) == arc
        assert [a.index for a in t.arcs()] == list(range(t.num_arcs))

    def test_level_slices_partition(self):
        t = Torus(3, 2)
        ids = [
            i
            for level in range(t.num_levels)
            for i in range(*t.level_slice(level).indices(t.num_arcs))
        ]
        assert ids == list(range(t.num_arcs))


class TestTorusGreedy:
    @pytest.mark.parametrize("side,d", [(3, 2), (4, 2), (5, 1)])
    def test_paths_reach_destination(self, side, d):
        t = Torus(side, d)
        for x in range(t.num_nodes):
            for z in range(t.num_nodes):
                path = t.greedy_path_arcs(x, z)
                assert len(path) == t.greedy_hops(x, z)
                cur = x
                for arc_id in path:
                    arc = t.arc(arc_id)
                    assert arc.tail == cur
                    cur = arc.head
                assert cur == z

    def test_dimension_order_is_increasing(self):
        t = Torus(4, 3)
        path = t.greedy_path_arcs(t.node((1, 2, 3)), t.node((3, 0, 1)))
        dims = [t.arc_components(a)[1] for a in path]
        assert dims == sorted(dims)

    def test_tie_breaks_plus(self):
        t = Torus(4, 1)
        path = t.greedy_path_arcs(0, 2)  # offset 2 == side/2: tie
        assert [t.arc_components(a)[2] for a in path] == [PLUS, PLUS]

    def test_hops_match_per_dimension_distance(self):
        t = Torus(5, 2)
        x, z = t.node((0, 4)), t.node((3, 0))
        # dim 0: min(3, 2) = 2?  offset 3 -> min(3, 2) = 2; dim 1: offset 1
        assert t.greedy_hops(x, z) == min(3, 2) + min(1, 4)
