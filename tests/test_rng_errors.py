"""Tests for RNG plumbing and the exception hierarchy."""

import numpy as np
import pytest

from repro import errors
from repro.rng import as_generator, spawn, spawn_many


class TestAsGenerator:
    def test_none_gives_fresh_generator(self):
        g1, g2 = as_generator(None), as_generator(None)
        assert isinstance(g1, np.random.Generator)
        assert g1 is not g2

    def test_int_seed_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence(self):
        ss = np.random.SeedSequence(7)
        a = as_generator(ss).random(3)
        b = as_generator(np.random.SeedSequence(7)).random(3)
        np.testing.assert_array_equal(a, b)


class TestSpawn:
    def test_children_independent_of_parent_consumption(self):
        g1 = as_generator(1)
        g2 = as_generator(1)
        # consuming the parent before/after spawn gives same child stream
        child1 = spawn(g1)
        g2.random(100)
        child2 = spawn(g2)
        np.testing.assert_array_equal(child1.random(5), child2.random(5))

    def test_spawn_many_distinct(self):
        children = spawn_many(as_generator(3), 4)
        outs = [c.random(3).tolist() for c in children]
        assert len({tuple(o) for o in outs}) == 4

    def test_spawn_many_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_many(as_generator(0), -1)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            errors.TopologyError,
            errors.UnstableSystemError,
            errors.SimulationError,
            errors.MeasurementError,
            errors.ConfigurationError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_unstable_formats_rho(self):
        err = errors.UnstableSystemError(1.25, "thing")
        assert "1.25" in str(err)
        assert err.rho == 1.25

    def test_value_error_compatibility(self):
        # users may catch ValueError for config/stability issues
        assert issubclass(errors.UnstableSystemError, ValueError)
        assert issubclass(errors.ConfigurationError, ValueError)
        assert issubclass(errors.TopologyError, ValueError)
