"""Unit tests for the d-cube topology (paper §1.1, Fig. 1a)."""

import pytest

from repro.errors import TopologyError
from repro.topology.hypercube import Hypercube


class TestConstruction:
    def test_basic_counts(self):
        cube = Hypercube(3)
        assert cube.d == 3
        assert cube.num_nodes == 8
        assert cube.num_arcs == 24  # d * 2^d
        assert cube.num_levels == 3
        assert cube.diameter == 3

    @pytest.mark.parametrize("d", [1, 2, 5, 10])
    def test_counts_scale(self, d):
        cube = Hypercube(d)
        assert cube.num_nodes == 2**d
        assert cube.num_arcs == d * 2**d

    @pytest.mark.parametrize("bad", [0, -1, 25, 3.5, "3", True])
    def test_rejects_bad_dimension(self, bad):
        with pytest.raises(TopologyError):
            Hypercube(bad)

    def test_equality_and_hash(self):
        assert Hypercube(3) == Hypercube(3)
        assert Hypercube(3) != Hypercube(4)
        assert hash(Hypercube(3)) == hash(Hypercube(3))


class TestNodeOps:
    def test_e_vectors(self, cube3):
        assert [cube3.e(j) for j in range(3)] == [1, 2, 4]

    def test_e_rejects_bad_dim(self, cube3):
        with pytest.raises(TopologyError):
            cube3.e(3)
        with pytest.raises(TopologyError):
            cube3.e(-1)

    def test_flip_is_involution(self, cube3):
        for x in range(8):
            for j in range(3):
                assert cube3.flip(cube3.flip(x, j), j) == x

    def test_neighbors(self, cube3):
        assert sorted(cube3.neighbors(0)) == [1, 2, 4]
        assert sorted(cube3.neighbors(7)) == [3, 5, 6]

    def test_neighbors_are_at_distance_one(self, cube4):
        for x in (0, 5, 15):
            for y in cube4.neighbors(x):
                assert cube4.hamming(x, y) == 1

    def test_validate_node_range(self, cube3):
        with pytest.raises(TopologyError):
            cube3.validate_node(8)
        with pytest.raises(TopologyError):
            cube3.validate_node(-1)

    def test_antipode(self, cube3):
        assert cube3.antipode(0) == 7
        assert cube3.antipode(5) == 2
        for x in range(8):
            assert cube3.hamming(x, cube3.antipode(x)) == 3

    def test_translate_preserves_distance(self, cube4):
        # §1.1: renaming x -> x ^ y* preserves all Hamming distances.
        y_star = 0b1010
        for x in range(16):
            for z in (0, 3, 9, 15):
                assert cube4.hamming(x, z) == cube4.hamming(
                    cube4.translate(x, y_star), cube4.translate(z, y_star)
                )


class TestHamming:
    def test_scalar_values(self, cube3):
        assert cube3.hamming(0, 0) == 0
        assert cube3.hamming(0, 7) == 3
        assert cube3.hamming(0b101, 0b011) == 2

    def test_symmetry(self, cube4):
        for x in (0, 7, 12):
            for z in (1, 5, 15):
                assert cube4.hamming(x, z) == cube4.hamming(z, x)

    def test_triangle_inequality(self, cube3):
        nodes = range(8)
        for x in nodes:
            for y in nodes:
                for z in nodes:
                    assert cube3.hamming(x, z) <= cube3.hamming(x, y) + cube3.hamming(y, z)

    def test_vectorised_matches_scalar(self, cube4, rng):
        x = rng.integers(0, 16, size=50)
        y = rng.integers(0, 16, size=50)
        vec = cube4.hamming_many(x, y)
        ref = [cube4.hamming(int(a), int(b)) for a, b in zip(x, y)]
        assert vec.tolist() == ref


class TestArcIndexing:
    def test_roundtrip(self, cube3):
        for index in range(cube3.num_arcs):
            arc = cube3.arc(index)
            assert arc.index == index
            assert cube3.arc_index(arc.tail, arc.level) == index

    def test_layout_is_dimension_major(self, cube3):
        # dimension k occupies [k * 2^d, (k+1) * 2^d)
        assert cube3.arc_index(0, 0) == 0
        assert cube3.arc_index(7, 0) == 7
        assert cube3.arc_index(0, 1) == 8
        assert cube3.arc_index(5, 2) == 21

    def test_level_slice(self, cube3):
        s = cube3.level_slice(1)
        assert (s.start, s.stop) == (8, 16)
        for idx in range(s.start, s.stop):
            assert cube3.arc_dim(idx) == 1

    def test_arc_head_flips_dim(self, cube3):
        arc = cube3.arc(cube3.arc_index(5, 1))
        assert arc.head == 5 ^ 2

    def test_all_arcs_enumeration(self, cube3):
        arcs = list(cube3.arcs())
        assert len(arcs) == cube3.num_arcs
        assert [a.index for a in arcs] == list(range(cube3.num_arcs))
        # every arc connects nodes at Hamming distance 1
        for a in arcs:
            assert cube3.hamming(a.tail, a.head) == 1

    def test_antiparallel_pairs_exist(self, cube3):
        arcs = {(a.tail, a.head) for a in cube3.arcs()}
        for (t, h) in arcs:
            assert (h, t) in arcs

    def test_arc_index_many(self, cube4, rng):
        tails = rng.integers(0, 16, size=30)
        dims = rng.integers(0, 4, size=30)
        out = cube4.arc_index_many(tails, dims)
        ref = [cube4.arc_index(int(t), int(j)) for t, j in zip(tails, dims)]
        assert out.tolist() == ref

    def test_validate_arc_index(self, cube3):
        with pytest.raises(TopologyError):
            cube3.arc(24)
        with pytest.raises(TopologyError):
            cube3.arc(-1)


class TestCanonicalPaths:
    def test_dims_increasing(self, cube4):
        assert cube4.dims_to_cross(0b0000, 0b1011) == [0, 1, 3]

    def test_path_matches_paper_example(self):
        # Paper §1.1: (0,0,0,0) -> (1,0,1,1) crosses dims 1,3,4 (1-based)
        # via (0001), (0101)... our 0-based: 0, 1, 3.
        cube = Hypercube(4)
        nodes = cube.canonical_path_nodes(0b0000, 0b1011)
        assert nodes == [0b0000, 0b0001, 0b0011, 0b1011]

    def test_path_length_equals_hamming(self, cube4):
        for x in (0, 6, 15):
            for z in (0, 3, 10):
                arcs = cube4.canonical_path_arcs(x, z)
                assert len(arcs) == cube4.hamming(x, z)

    def test_empty_path_for_self(self, cube3):
        assert cube3.canonical_path_arcs(5, 5) == []
        assert cube3.canonical_path_nodes(5, 5) == [5]

    def test_path_arcs_consistent_with_nodes(self, cube4):
        x, z = 0b0101, 0b1010
        nodes = cube4.canonical_path_nodes(x, z)
        arcs = cube4.canonical_path_arcs(x, z)
        for arc_id, (a, b) in zip(arcs, zip(nodes, nodes[1:])):
            arc = cube4.arc(arc_id)
            assert (arc.tail, arc.head) == (a, b)

    def test_path_unique_per_pair(self, cube3):
        # Canonical path is deterministic: same input, same output.
        assert cube3.canonical_path_arcs(1, 6) == cube3.canonical_path_arcs(1, 6)
