"""Tests for the vectorised feed-forward simulator."""

import numpy as np
import pytest

from repro.core.qnetwork import ExplicitLevelledSpec, HypercubeQSpec
from repro.errors import ConfigurationError
from repro.sim.feedforward import (
    serve_level,
    simulate_butterfly_greedy,
    simulate_hypercube_greedy,
    simulate_markovian,
)
from repro.traffic.destinations import BernoulliFlipLaw
from repro.traffic.workload import (
    ButterflyWorkload,
    HypercubeWorkload,
    TrafficSample,
)


def _sample(times, origins, dests, horizon=100.0):
    return TrafficSample(
        np.asarray(times, dtype=float),
        np.asarray(origins, dtype=np.int64),
        np.asarray(dests, dtype=np.int64),
        horizon,
    )


class TestServeLevel:
    def test_independent_arcs(self):
        arcs = np.array([0, 1, 0, 1])
        times = np.array([0.0, 0.0, 0.5, 5.0])
        pids = np.arange(4)
        dep, _ = serve_level(arcs, times, pids)
        np.testing.assert_allclose(dep, [1.0, 1.0, 2.0, 6.0])

    def test_tie_broken_by_pid(self):
        arcs = np.array([0, 0])
        times = np.array([1.0, 1.0])
        # pid 1 listed first but pid 0 must be served first
        dep, _ = serve_level(arcs, times, np.array([1, 0]))
        np.testing.assert_allclose(dep, [3.0, 2.0])

    def test_ps_discipline(self):
        arcs = np.array([0, 0])
        times = np.array([0.0, 0.5])
        dep, _ = serve_level(arcs, times, np.arange(2), discipline="ps")
        np.testing.assert_allclose(dep, [1.5, 2.0])

    def test_empty(self):
        dep, order = serve_level(np.array([], dtype=np.int64), np.array([]), np.array([], dtype=np.int64))
        assert dep.shape == (0,)
        assert order.shape == (0,)

    def test_rejects_unknown_discipline(self):
        with pytest.raises(ConfigurationError):
            serve_level(np.array([0]), np.array([0.0]), np.array([0]), "lifo")


class TestHypercubePacketMode:
    def test_single_packet_no_contention(self, cube3):
        # 0 -> 7 crosses 3 dims: delivery = birth + 3
        s = _sample([2.0], [0], [7])
        res = simulate_hypercube_greedy(cube3, s)
        assert res.delivery[0] == pytest.approx(5.0)
        assert res.hops[0] == 3

    def test_zero_hop_packet(self, cube3):
        s = _sample([1.0], [5], [5])
        res = simulate_hypercube_greedy(cube3, s)
        assert res.delivery[0] == pytest.approx(1.0)
        assert res.hops[0] == 0

    def test_contention_on_shared_arc(self, cube3):
        # two packets both need arc (0, dim 0) at t=0: second waits
        s = _sample([0.0, 0.0], [0, 0], [1, 1])
        res = simulate_hypercube_greedy(cube3, s)
        np.testing.assert_allclose(np.sort(res.delivery), [1.0, 2.0])

    def test_disjoint_paths_no_interaction(self, cube3):
        # packets from different nodes crossing different arcs
        s = _sample([0.0, 0.0], [0, 6], [1, 7])
        res = simulate_hypercube_greedy(cube3, s)
        np.testing.assert_allclose(res.delivery, [1.0, 1.0])

    def test_pipeline_effect(self, cube3):
        # back-to-back packets 0 -> 3 (dims 0 then 1): heads queue at
        # dim 0, then flow through dim 1 without further waiting.
        s = _sample([0.0, 0.0], [0, 0], [3, 3])
        res = simulate_hypercube_greedy(cube3, s)
        np.testing.assert_allclose(np.sort(res.delivery), [2.0, 3.0])

    def test_dim_order_changes_paths(self, cube3):
        # same workload, decreasing order: delivery times still valid
        s = _sample([0.0, 0.1], [0, 2], [7, 5])
        inc = simulate_hypercube_greedy(cube3, s)
        dec = simulate_hypercube_greedy(cube3, s, dim_order=[2, 1, 0])
        assert inc.hops.tolist() == dec.hops.tolist()
        # all packets delivered at/after birth + hops
        assert np.all(dec.delivery >= s.times + dec.hops - 1e-9)

    def test_rejects_bad_dim_order(self, cube3):
        s = _sample([0.0], [0], [1])
        with pytest.raises(ConfigurationError):
            simulate_hypercube_greedy(cube3, s, dim_order=[0, 1])

    def test_arc_log_records_every_hop(self, cube4):
        wl = HypercubeWorkload(cube4, 1.0, BernoulliFlipLaw(4, 0.5))
        s = wl.generate(50.0, rng=1)
        res = simulate_hypercube_greedy(cube4, s, record_arc_log=True)
        assert res.arc_log.num_hops == int(res.hops.sum())
        # every hop takes at least the unit service time
        assert np.all(res.arc_log.t_out >= res.arc_log.t_in + 1.0 - 1e-9)

    def test_delays_at_least_hops(self, cube4):
        wl = HypercubeWorkload(cube4, 1.5, BernoulliFlipLaw(4, 0.5))
        s = wl.generate(100.0, rng=2)
        res = simulate_hypercube_greedy(cube4, s)
        assert np.all(res.delays() >= res.hops - 1e-9)

    def test_delay_record_roundtrip(self, cube3):
        wl = HypercubeWorkload(cube3, 1.0, BernoulliFlipLaw(3, 0.5))
        s = wl.generate(80.0, rng=3)
        rec = simulate_hypercube_greedy(cube3, s).delay_record()
        assert rec.num_packets == s.num_packets
        assert rec.mean_delay() > 0


class TestButterflyPacketMode:
    def test_every_packet_takes_d_hops(self, bf3):
        wl = ButterflyWorkload(bf3, 1.0, BernoulliFlipLaw(3, 0.5))
        s = wl.generate(50.0, rng=1)
        res = simulate_butterfly_greedy(bf3, s)
        assert np.all(res.hops == 3)
        assert np.all(res.delays() >= 3 - 1e-9)

    def test_single_packet_delay_is_d(self, bf3):
        s = _sample([0.0], [2], [5])
        res = simulate_butterfly_greedy(bf3, s)
        assert res.delivery[0] == pytest.approx(3.0)

    def test_same_row_packets_share_straight_arcs(self, bf3):
        # two packets from row 0 to row 0: identical straight paths
        s = _sample([0.0, 0.0], [0, 0], [0, 0])
        res = simulate_butterfly_greedy(bf3, s)
        np.testing.assert_allclose(np.sort(res.delivery), [3.0, 4.0])

    def test_ps_discipline_runs(self, bf3):
        s = _sample([0.0, 0.0], [0, 0], [0, 0])
        res = simulate_butterfly_greedy(bf3, s, discipline="ps")
        # PS shares level-0 arc: both slowed there, then pipeline
        assert np.all(res.delivery >= 3.0)


class TestMarkovianMode:
    def test_fig2_network_deterministic_route(self):
        # both S1 customers routed to S3 with probability 1
        spec = ExplicitLevelledSpec(
            levels=[0, 0, 1],
            routing={0: ([2], [1.0]), 1: ([2], [1.0])},
        )
        ext_t = np.array([0.0, 0.2])
        ext_a = np.array([0, 1])
        res = simulate_markovian(spec, ext_t, ext_a, rng=0)
        # S1 departs 1.0 -> S3 [1,2]; S2 departs 1.2 -> S3 waits to 2 -> 3
        np.testing.assert_allclose(np.sort(res.exit_times), [2.0, 3.0])
        assert res.hops.tolist() == [2, 2]

    def test_exit_count_matches_inputs(self, cube3):
        spec = HypercubeQSpec(cube3, 0.5)
        times, arcs = spec.sample_external_arrivals(1.0, 100.0, rng=1)
        res = simulate_markovian(spec, times, arcs, rng=2)
        assert res.exit_times.shape == times.shape
        assert np.all(res.exit_times >= times + 1.0 - 1e-9)

    def test_record_and_replay_decisions(self, cube3):
        spec = HypercubeQSpec(cube3, 0.5)
        times, arcs = spec.sample_external_arrivals(1.0, 60.0, rng=3)
        first = simulate_markovian(spec, times, arcs, rng=4, record_decisions=True)
        replay = simulate_markovian(spec, times, arcs, decisions=first.decisions)
        np.testing.assert_allclose(first.exit_times, replay.exit_times)

    def test_replay_with_short_decisions_fails(self, cube3):
        from repro.errors import SimulationError

        spec = HypercubeQSpec(cube3, 0.5)
        times, arcs = spec.sample_external_arrivals(1.0, 60.0, rng=5)
        first = simulate_markovian(spec, times, arcs, rng=6, record_decisions=True)
        truncated = {a: d[:0] for a, d in first.decisions.items()}
        with pytest.raises(SimulationError):
            simulate_markovian(spec, times, arcs, decisions=truncated)

    def test_rejects_mismatched_inputs(self, cube3):
        spec = HypercubeQSpec(cube3, 0.5)
        with pytest.raises(ConfigurationError):
            simulate_markovian(spec, np.array([0.0]), np.array([0, 1]))

    def test_hops_distribution_geometric(self, cube4):
        # each customer crosses Geometric-like number of extra levels;
        # mean total hops per ENTERING packet = d*p / (1-(1-p)^d)
        p = 0.5
        spec = HypercubeQSpec(cube4, p)
        times, arcs = spec.sample_external_arrivals(1.0, 2000.0, rng=7)
        res = simulate_markovian(spec, times, arcs, rng=8)
        expected = 4 * p / (1 - (1 - p) ** 4)
        assert res.hops.mean() == pytest.approx(expected, rel=0.05)
