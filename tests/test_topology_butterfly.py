"""Unit tests for the butterfly topology (paper §4.1, Fig. 3a)."""

import pytest

from repro.errors import TopologyError
from repro.topology.butterfly import STRAIGHT, VERTICAL, Butterfly


class TestConstruction:
    def test_basic_counts(self):
        bf = Butterfly(2)
        assert bf.d == 2
        assert bf.rows == 4
        assert bf.num_nodes == 12  # (d+1) * 2^d
        assert bf.num_arcs == 16  # d * 2^(d+1)
        assert bf.num_levels == 2

    @pytest.mark.parametrize("d", [1, 3, 6])
    def test_counts_scale(self, d):
        bf = Butterfly(d)
        assert bf.num_nodes == (d + 1) * 2**d
        assert bf.num_arcs == d * 2 ** (d + 1)

    @pytest.mark.parametrize("bad", [0, -2, 30, 1.5, True])
    def test_rejects_bad_dimension(self, bad):
        with pytest.raises(TopologyError):
            Butterfly(bad)

    def test_equality(self):
        assert Butterfly(3) == Butterfly(3)
        assert Butterfly(3) != Butterfly(2)


class TestArcIndexing:
    def test_roundtrip(self, bf3):
        for index in range(bf3.num_arcs):
            row, level, kind = bf3.arc_components(index)
            assert bf3.arc_index(row, level, kind) == index

    def test_level_slices_partition_arcs(self, bf3):
        seen = []
        for level in range(bf3.num_levels):
            s = bf3.level_slice(level)
            seen.extend(range(s.start, s.stop))
        assert seen == list(range(bf3.num_arcs))

    def test_straight_arc_preserves_row(self, bf3):
        arc = bf3.arc(bf3.arc_index(5, 1, STRAIGHT))
        row_t, lvl_t = bf3.node_components(arc.tail)
        row_h, lvl_h = bf3.node_components(arc.head)
        assert (row_t, lvl_t) == (5, 1)
        assert (row_h, lvl_h) == (5, 2)

    def test_vertical_arc_flips_level_bit(self, bf3):
        arc = bf3.arc(bf3.arc_index(5, 1, VERTICAL))
        row_h, lvl_h = bf3.node_components(arc.head)
        assert row_h == 5 ^ 2  # flips bit 1
        assert lvl_h == 2

    def test_arc_validation(self, bf3):
        with pytest.raises(TopologyError):
            bf3.arc_index(8, 0, STRAIGHT)
        with pytest.raises(TopologyError):
            bf3.arc_index(0, 3, STRAIGHT)  # arc levels go 0..d-1
        with pytest.raises(TopologyError):
            bf3.arc_index(0, 0, 2)

    def test_node_id_roundtrip(self, bf3):
        for level in range(bf3.d + 1):
            for row in range(bf3.rows):
                node = bf3.node_id(row, level)
                assert bf3.node_components(node) == (row, level)

    def test_each_tail_node_has_two_outgoing_arcs(self, bf3):
        from collections import Counter

        tails = Counter(a.tail for a in bf3.arcs())
        # every node at levels 0..d-1 has exactly 2 outgoing arcs
        assert all(c == 2 for c in tails.values())
        assert len(tails) == bf3.d * bf3.rows


class TestUniquePaths:
    def test_path_kinds_match_xor(self, bf3):
        kinds = bf3.path_kinds(0b000, 0b101)
        assert kinds == [1, 0, 1]

    def test_path_has_d_arcs(self, bf3):
        for x in (0, 3, 7):
            for z in (0, 5, 6):
                assert len(bf3.path_arcs(x, z)) == 3

    def test_path_rows_end_at_destination(self, bf3):
        for x in (0, 2, 7):
            for z in (1, 4, 7):
                rows = bf3.path_rows(x, z)
                assert rows[0] == x
                assert rows[-1] == z
                assert len(rows) == bf3.d + 1

    def test_path_arcs_are_level_ordered(self, bf3):
        arcs = bf3.path_arcs(2, 5)
        levels = [bf3.arc_components(a)[1] for a in arcs]
        assert levels == [0, 1, 2]

    def test_vertical_count_equals_hamming(self, bf3):
        # §4.1: the path has exactly H(x, z) vertical arcs.
        for x in range(8):
            for z in range(8):
                arcs = bf3.path_arcs(x, z)
                verticals = sum(bf3.arc_components(a)[2] for a in arcs)
                assert verticals == bf3.hamming(x, z)

    def test_paths_consistent_with_arcs(self, bf3):
        # following the arcs from [x;0] must land on [z;d]
        x, z = 0b011, 0b100
        rows = bf3.path_rows(x, z)
        for arc_id, level in zip(bf3.path_arcs(x, z), range(3)):
            arc = bf3.arc(arc_id)
            assert bf3.node_components(arc.tail) == (rows[level], level)
            assert bf3.node_components(arc.head) == (rows[level + 1], level + 1)

    def test_antipodal_path_all_vertical(self, bf3):
        kinds = bf3.path_kinds(0, 7)
        assert kinds == [1, 1, 1]

    def test_same_row_path_all_straight(self, bf3):
        kinds = bf3.path_kinds(5, 5)
        assert kinds == [0, 0, 0]
