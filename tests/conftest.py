"""Shared fixtures for the test suite.

All stochastic tests take explicit seeds so the suite is deterministic;
fixtures provide small, fast default objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import BernoulliFlipLaw
from repro.traffic.workload import ButterflyWorkload, HypercubeWorkload


@pytest.fixture
def cube3() -> Hypercube:
    return Hypercube(3)


@pytest.fixture
def cube4() -> Hypercube:
    return Hypercube(4)


@pytest.fixture
def bf3() -> Butterfly:
    return Butterfly(3)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_cube_workload(cube4) -> HypercubeWorkload:
    """d=4, rho = 0.7, uniform destinations."""
    return HypercubeWorkload(cube4, lam=1.4, law=BernoulliFlipLaw(4, 0.5))


@pytest.fixture
def small_bf_workload(bf3) -> ButterflyWorkload:
    """d=3 butterfly, rho = 0.7 at p = 0.5."""
    return ButterflyWorkload(bf3, lam=1.4, law=BernoulliFlipLaw(3, 0.5))
