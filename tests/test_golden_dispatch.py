"""Golden regression suite: bit-identical dispatch across refactors.

One pinned mean-delay value per (scheme, network, discipline) cell at a
fixed seed, computed from the pre-plugin ``_DISPATCH`` table.  The RNG
consumption order of every scheme adapter is part of the public
contract — migrating the dispatch to the plugin registry (or any later
refactor of the adapters) must reproduce these numbers **exactly**, not
merely to statistical agreement.  Each cell is additionally asserted
through the replication-**batched** engine path: a batch of R
replications must be bit-identical to R sequential runs.

If a change legitimately alters the physics (never the plumbing), the
values may be regenerated with::

    PYTHONPATH=src python tests/test_golden_dispatch.py

which prints a fresh ``GOLDEN`` block.
"""

from __future__ import annotations

import pytest

from repro.runner.spec import ScenarioSpec
from repro.sim.run_spec import run_spec

_COMMON = dict(replications=1, base_seed=123, seed_policy="sequential")

#: every (scheme, network, discipline) cell the dispatch supports, plus
#: the forced-event greedy cells (engine choice must not change numbers
#: beyond round-off; for the hypercube it is exactly identical).
GOLDEN_SPECS = [
    ScenarioSpec(name="g-greedy-hc-fifo", d=4, rho=0.7, horizon=200.0, **_COMMON),
    ScenarioSpec(name="g-greedy-hc-ps", discipline="ps", d=4, rho=0.7,
                 horizon=200.0, **_COMMON),
    ScenarioSpec(name="g-greedy-hc-event", engine="event", d=4, rho=0.7,
                 horizon=200.0, **_COMMON),
    ScenarioSpec(name="g-greedy-bf-fifo", network="butterfly", d=3, rho=0.7,
                 horizon=200.0, **_COMMON),
    ScenarioSpec(name="g-greedy-bf-ps", network="butterfly", discipline="ps",
                 d=3, rho=0.7, horizon=200.0, **_COMMON),
    ScenarioSpec(name="g-greedy-ring-fifo", network="ring", d=4, rho=0.7,
                 horizon=150.0, **_COMMON),
    ScenarioSpec(name="g-greedy-ring-ps", network="ring", discipline="ps",
                 d=4, rho=0.6, horizon=150.0, **_COMMON),
    ScenarioSpec(name="g-greedy-ring-event", network="ring", engine="event",
                 d=4, rho=0.7, horizon=150.0, **_COMMON),
    ScenarioSpec(name="g-greedy-ring-clockwise", network="ring", d=4, rho=0.7,
                 horizon=150.0, extra={"direction": "clockwise"}, **_COMMON),
    ScenarioSpec(name="g-greedy-torus-fifo", network="torus", d=2, rho=0.7,
                 horizon=150.0, **_COMMON),
    ScenarioSpec(name="g-greedy-torus-ps", network="torus", discipline="ps",
                 d=2, rho=0.6, horizon=150.0, **_COMMON),
    ScenarioSpec(name="g-greedy-torus-event", network="torus", engine="event",
                 d=2, rho=0.7, horizon=150.0, **_COMMON),
    ScenarioSpec(name="g-slotted-hc-fifo", scheme="slotted", d=4, rho=0.75,
                 horizon=200.0, extra={"tau": 0.5}, **_COMMON),
    ScenarioSpec(name="g-random-order-hc-fifo", scheme="random_order", d=4,
                 rho=0.8, horizon=150.0, **_COMMON),
    ScenarioSpec(name="g-twophase-hc-fifo", scheme="twophase", d=4, lam=0.5,
                 horizon=150.0, **_COMMON),
    ScenarioSpec(name="g-pipelined-batch-hc-fifo", scheme="pipelined_batch",
                 d=4, rho=0.05, horizon=200.0, **_COMMON),
    ScenarioSpec(name="g-deflection-hc-fifo", scheme="deflection", d=4,
                 lam=0.8, horizon=300.0, **_COMMON),
    ScenarioSpec(name="g-static-greedy-hc-fifo", scheme="static_greedy", d=5,
                 horizon=1.0, warmup_fraction=0.0, cooldown_fraction=0.0,
                 extra={"perm": "bitrev"}, **_COMMON),
    ScenarioSpec(name="g-static-valiant-hc-fifo", scheme="static_valiant",
                 d=5, horizon=1.0, warmup_fraction=0.0, cooldown_fraction=0.0,
                 extra={"perm": "bitrev"}, **_COMMON),
]

#: name -> (mean_delay, num_packets, metrics) — exact floats, not approx.
GOLDEN = {
    "g-greedy-hc-fifo": (4.182211256395824, 4516, ()),
    "g-greedy-hc-ps": (7.089735355641364, 4516, ()),
    "g-greedy-hc-event": (4.182211256395824, 4516, ()),
    "g-greedy-bf-fifo": (6.001409534737611, 2265, ()),
    "g-greedy-bf-ps": (11.17466906563258, 2265, ()),
    # ring/torus: the fixed-point engine is the native one; the forced
    # event cells pin that both engines produce the same FIFO sample
    # path bit for bit, exactly like the hypercube pair above
    "g-greedy-ring-fifo": (6.027571894534329, 761, ()),
    "g-greedy-ring-ps": (9.590600782641117, 654, ()),
    "g-greedy-ring-event": (6.027571894534329, 761, ()),
    "g-greedy-ring-clockwise": (11.384610392699296, 232, ()),
    "g-greedy-torus-fifo": (4.170495767807324, 2265, ()),
    "g-greedy-torus-ps": (4.5199929095388285, 1943, ()),
    "g-greedy-torus-event": (4.170495767807324, 2265, ()),
    "g-slotted-hc-fifo": (4.216748017083588, 4658, ()),
    "g-random-order-hc-fifo": (5.871088631928394, 3873, ()),
    "g-twophase-hc-fifo": (5.543979359488571, 1219, (("mean_hops", 4.0),)),
    "g-pipelined-batch-hc-fifo": (
        4.141662511652928,
        330,
        (
            ("delivered_fraction", 1.0),
            ("final_backlog", 0.0),
            ("mean_round_duration", 3.0454545454545454),
        ),
    ),
    "g-deflection-hc-fifo": (
        2.529313232830821,
        3745,
        (("mean_deflections", 0.46194926568758343),),
    ),
    "g-static-greedy-hc-fifo": (2.0, 32, (("makespan", 4.0),)),
    "g-static-valiant-hc-fifo": (4.3125, 32, (("makespan", 9.0),)),
}


@pytest.mark.parametrize("spec", GOLDEN_SPECS, ids=lambda s: s.name)
def test_golden_cell_is_bit_identical(spec):
    mean, packets, metrics = GOLDEN[spec.name]
    out = run_spec(spec, spec.base_seed)
    assert out.mean_delay == mean  # exact: no tolerance
    assert out.num_packets == packets
    assert out.metrics == metrics


@pytest.mark.parametrize("spec", GOLDEN_SPECS, ids=lambda s: s.name)
def test_golden_cell_batched_is_bit_identical(spec):
    """Every golden cell whose engine batches must reproduce its pinned
    value **through the batched path**: a batch of R replications is
    bit-identical to R sequential runs, replication 0 of which is the
    golden cell itself."""
    from repro.rng import replication_seeds

    reps = 3
    grown = spec.replace(replications=reps)
    runner = grown.plugin.batch_runner(grown)
    if runner is None:
        pytest.skip("cell's scheme/engine does not declare batching")
    seeds = replication_seeds(grown.base_seed, reps, grown.seed_policy)
    batched = runner(seeds)
    assert len(batched) == reps
    mean, packets, metrics = GOLDEN[spec.name]
    assert batched[0].mean_delay == mean  # exact: no tolerance
    assert batched[0].num_packets == packets
    assert batched[0].metrics == metrics
    sequential = [run_spec(grown, seed) for seed in seeds]
    assert batched == sequential


def test_every_scheme_has_a_golden_cell():
    """The suite stays exhaustive as schemes are added: every registered
    scheme/network cell must pin at least one golden value."""
    from repro.runner import list_scenarios

    golden_cells = {(s.scheme, s.network) for s in GOLDEN_SPECS}
    catalog_cells = {(s.scheme, s.network) for s in list_scenarios()}
    missing = catalog_cells - golden_cells
    assert not missing, f"schemes without a golden cell: {sorted(missing)}"


if __name__ == "__main__":  # regeneration helper
    for s in GOLDEN_SPECS:
        o = run_spec(s, s.base_seed)
        print(f'    "{s.name}": ({o.mean_delay!r}, {o.num_packets}, {o.metrics!r}),')
