#!/usr/bin/env python3
"""The butterfly as a crossbar switch (paper §4).

Scenario: a d-dimensional butterfly connecting 2^d inputs to 2^d
outputs — the crossbar-switch setting of §4.1.  Packets enter at level
0 and exit at level d along *unique* paths; p controls how far outputs
sit from inputs in row-address space.

The interesting engineering question reproduced here: **which arcs are
the bottleneck?**  For p > 1/2 the vertical arcs saturate first, for
p < 1/2 the straight arcs do (Prop 15 / eq. 17); the sustainable
per-input rate is 1/max(p, 1-p), maximised at p = 1/2.

Run:  python examples/butterfly_crossbar.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.greedy import GreedyButterflyScheme
from repro.sim.measurement import arc_arrival_counts


def main() -> None:
    d, horizon = 4, 1000.0
    rows = []
    for i, p in enumerate([0.2, 0.5, 0.8]):
        # drive each configuration at 85% of ITS OWN capacity
        lam = 0.85 / max(p, 1 - p)
        scheme = GreedyButterflyScheme(d=d, lam=lam, p=p)
        res = scheme.run(horizon, rng=2000 + i, record_arc_log=True)
        rates = (
            arc_arrival_counts(res.arc_log.arc, scheme.butterfly.num_arcs) / horizon
        )
        kinds = np.arange(scheme.butterfly.num_arcs) % 2
        rows.append(
            (
                p,
                f"{lam:.3f}",
                scheme.rho,
                float(rates[kinds == 0].mean()),  # straight
                float(rates[kinds == 1].mean()),  # vertical
                "vertical" if p > 0.5 else ("straight" if p < 0.5 else "tie"),
                res.delay_record().mean_delay(),
                scheme.delay_upper_bound(),
            )
        )
    print(
        format_table(
            [
                "p",
                "lam",
                "rho",
                "straight flow",
                "vertical flow",
                "bottleneck",
                "measured T",
                "Prop17 bound",
            ],
            rows,
            title=f"{d}-dimensional butterfly at 85% of capacity, by traffic skew p",
        )
    )
    print(
        "\nProp 15 in action: straight arcs carry lam(1-p), vertical arcs\n"
        "lam*p — the switch sustains the most traffic at p = 1/2, where the\n"
        "two arc families share the load evenly."
    )


if __name__ == "__main__":
    main()
