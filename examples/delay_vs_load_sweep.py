#!/usr/bin/env python3
"""Delay vs load: the paper's headline curves, regenerated.

Scenario from the paper's introduction: processors of a hypercube
multicomputer exchange messages while executing a parallel algorithm;
we need to know how communication delay grows with the offered load,
and whether the network can be driven near its capacity.

This sweep is a thin wrapper over the registered
``hypercube-greedy-mid`` scenario: each load point is a derived spec
with 4 independent replications, fanned out across worker processes by
the experiment engine, and the confidence interval is pooled across
replications.  The printed bracket is the executable version of the
paper's T <= dp/(1-rho) story, including the 1/(1-rho) blow-up near
saturation.

Run:  python examples/delay_vs_load_sweep.py [d] [jobs]
"""

import sys

from repro.analysis.tables import format_table
from repro.runner import get_scenario, measure_many


def main(d: int = 6, jobs: int = 4) -> None:
    rhos = [0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95]
    base = get_scenario("hypercube-greedy-mid").replace(d=d, replications=4)
    specs = [
        base.replace(
            name=f"sweep-rho{rho}",
            rho=rho,
            horizon=2000.0 if rho >= 0.9 else 800.0,
            base_seed=1000 + i,
        )
        for i, rho in enumerate(rhos)
    ]
    rows = [
        (
            m.rho,
            m.lower_bound,
            m.mean_delay,
            f"±{m.ci.halfwidth:.3f}",
            m.upper_bound,
            (1 - m.rho) * m.mean_delay,
        )
        for m in measure_many(specs, jobs=jobs)
    ]
    print(
        format_table(
            ["rho", "Prop13 lower", "measured T", "95% CI", "Prop12 upper", "(1-rho)T"],
            rows,
            title=f"Greedy routing on the {d}-cube, uniform traffic (p = 1/2)",
        )
    )
    print(
        "\nReading the shape: T hugs the lower bound at light load, bends up\n"
        "like 1/(1-rho) near saturation, and (1-rho)*T settles inside the\n"
        f"paper's heavy-traffic window [p/2, dp] = [0.25, {d * 0.5}]."
    )


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 6,
        int(sys.argv[2]) if len(sys.argv) > 2 else 4,
    )
