#!/usr/bin/env python3
"""From theory to hardware: sizing router buffers with the paper's tails.

The paper assumes infinite buffers, then proves occupancies are small:
under the dominating product-form law each arc's queue is geometric(rho)
(Prop 11 + Walrand), so a B-slot buffer overflows with stationary
probability at most rho^B.  This example dimensions per-arc and per-node
buffers for target overflow probabilities and validates them against a
simulated run's actual occupancy maxima.

Run:  python examples/buffer_dimensioning.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.buffers import (
    arc_buffer_for_overflow,
    node_buffer_for_overflow,
)
from repro.core.greedy import GreedyHypercubeScheme
from repro.sim.measurement import PopulationTracker


def main() -> None:
    d, rho, p = 5, 0.8, 0.5
    horizon = 1200.0
    scheme = GreedyHypercubeScheme(d=d, lam=rho / p, p=p)

    rows = []
    for eps in (1e-2, 1e-4, 1e-6):
        rows.append(
            (
                eps,
                arc_buffer_for_overflow(rho, eps),
                node_buffer_for_overflow(d, rho, eps),
            )
        )
    print(
        format_table(
            ["target overflow prob", "per-arc slots", "per-node slots (d arcs)"],
            rows,
            title=f"Buffer sizes from the geometric tail (d={d}, rho={rho})",
        )
    )

    # validate against a simulated run: per-arc occupancy maxima
    res = scheme.run(horizon, rng=21, record_arc_log=True)
    log = res.arc_log
    maxima = []
    for arc in range(scheme.cube.num_arcs):
        m = log.arc == arc
        if not m.any():
            maxima.append(0)
            continue
        occ = PopulationTracker.from_intervals(log.t_in[m], log.t_out[m])
        maxima.append(int(occ.maximum()))
    maxima = np.array(maxima)
    b_4 = arc_buffer_for_overflow(rho, 1e-4)
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ("simulated horizon", horizon),
                ("packets routed", res.sample.num_packets),
                ("max per-arc occupancy observed", int(maxima.max())),
                ("mean per-arc occupancy max", float(maxima.mean())),
                (f"arcs ever exceeding B(eps=1e-4) = {b_4}", int((maxima > b_4).sum())),
            ],
            title="Simulated occupancy vs the dimensioning rule",
        )
    )
    print(
        "\nThe geometric-tail rule B = ceil(log eps / log rho) covers the\n"
        "simulated maxima with room to spare — the engineering payoff of\n"
        "the paper's 'O(d) packets per node w.h.p.' analysis."
    )


if __name__ == "__main__":
    main()
