#!/usr/bin/env python3
"""Beyond the paper's model: adversarial traffic and two-phase mixing.

The paper's analysis assumes translation-invariant destinations (eq. 1
or the §2.2 generalisation).  Its concluding remarks (§5) point at the
general case: "it may be profitable to 'mix' the packets by first
sending each of them to a random intermediate node... at the expense of
reducing the maximum traffic that may be sustained."

This example makes that trade concrete with the classic adversary —
bit-reversal permutation traffic, whose canonical dimension-order paths
funnel 2^(d/2-1) flows through single arcs:

 * direct greedy routing saturates at lam ~ 2^-(d/2-1);
 * two-phase (Valiant) routing sustains any lam < 1, paying ~2x hops.

Everything runs through the scenario registry on the **traffic axis**:
``hypercube-greedy-bitrev`` and ``hypercube-twophase-bitrev`` are the
registered cells (``traffic="bitrev"``), and the horizon grid below is
derived with ``spec.replace`` — no hand-rolled workloads.  The static
arc-load theory check still uses the library API directly.

Run:  python examples/adversarial_traffic_mixing.py
"""

from repro.analysis.tables import format_table
from repro.runner import get_scenario, measure_many
from repro.schemes.twophase import direct_greedy_arc_loads
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import PermutationTraffic, bit_reversal_permutation


def main() -> None:
    direct = get_scenario("hypercube-greedy-bitrev")
    twophase = get_scenario("hypercube-twophase-bitrev").replace(
        d=direct.d, lam=direct.lam
    )
    d, lam = direct.d, direct.lam
    cube = Hypercube(d)
    law = PermutationTraffic(d, bit_reversal_permutation(d))

    loads = direct_greedy_arc_loads(cube, law, lam)
    print(
        format_table(
            ["quantity", "value"],
            [
                ("traffic", f"{direct.traffic} (scenario {direct.name!r})"),
                ("per-node rate lam", lam),
                ("mean arc load (direct greedy)", float(loads.mean())),
                ("max arc load (direct greedy)", float(loads.max())),
                ("arcs overloaded (load >= 1)", int((loads >= 1.0).sum())),
            ],
            title=f"Direct greedy routing under bit reversal (d={d})",
        )
    )

    # the same cells at growing horizons: direct greedy's backlog grows
    # without bound, two-phase mixing holds steady
    grid = [
        direct.replace(
            name=f"bitrev-direct-h{h:g}", horizon=h, replications=1,
            base_seed=5, seed_policy="sequential",
        )
        for h in (150.0, 300.0, 600.0)
    ] + [
        twophase.replace(
            name=f"bitrev-twophase-h{h:g}", horizon=h, replications=1,
            base_seed=6, seed_policy="sequential",
        )
        for h in (150.0, 300.0)
    ]
    rows = [
        (m.scheme, m.horizon, m.mean_delay)
        for m in measure_many(grid)
    ]
    print()
    print(
        format_table(
            ["scheme", "horizon", "mean delay"],
            rows,
            title="Direct delay grows without bound; two-phase holds steady",
        )
    )
    print(
        "\nThe §5 trade: mixing reinstates stability for ANY traffic pattern\n"
        f"(every arc carries ≤ lam), at ~{d:.0f} hops per "
        f"packet instead of ~{d/2:.0f}.\n"
        "Try the rest of the family:  repro run hypercube-greedy-transpose\n"
        "                             repro run hypercube-twophase-hotspot"
    )


if __name__ == "__main__":
    main()
