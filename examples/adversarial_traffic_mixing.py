#!/usr/bin/env python3
"""Beyond the paper's model: adversarial traffic and two-phase mixing.

The paper's analysis assumes translation-invariant destinations (eq. 1
or the §2.2 generalisation).  Its concluding remarks (§5) point at the
general case: "it may be profitable to 'mix' the packets by first
sending each of them to a random intermediate node... at the expense of
reducing the maximum traffic that may be sustained."

This example makes that trade concrete with the classic adversary —
bit-reversal permutation traffic, whose canonical dimension-order paths
funnel 2^(d/2-1) flows through single arcs:

 * direct greedy routing saturates at lam ~ 2^-(d/2-1);
 * two-phase (Valiant) routing sustains any lam < 1, paying ~2x hops.

Run:  python examples/adversarial_traffic_mixing.py
"""

from repro.analysis.tables import format_table
from repro.schemes.twophase import TwoPhaseScheme, direct_greedy_arc_loads
from repro.sim.feedforward import simulate_hypercube_greedy
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import PermutationTraffic, bit_reversal_permutation
from repro.traffic.workload import HypercubeWorkload


def main() -> None:
    d, lam = 6, 0.4
    cube = Hypercube(d)
    law = PermutationTraffic(d, bit_reversal_permutation(d))

    loads = direct_greedy_arc_loads(cube, law, lam)
    print(
        format_table(
            ["quantity", "value"],
            [
                ("traffic", "bit-reversal permutation"),
                ("per-node rate lam", lam),
                ("mean arc load (direct greedy)", float(loads.mean())),
                ("max arc load (direct greedy)", float(loads.max())),
                ("arcs overloaded (load >= 1)", int((loads >= 1.0).sum())),
            ],
            title=f"Direct greedy routing under bit reversal (d={d})",
        )
    )

    # direct greedy: measure the blow-up
    wl = HypercubeWorkload(cube, lam, law)
    rows = []
    for horizon in (150.0, 300.0, 600.0):
        s = wl.generate(horizon, rng=5)
        res = simulate_hypercube_greedy(cube, s)
        mask = s.times >= 0.3 * horizon
        rows.append(
            ("direct", horizon, float((res.delivery[mask] - s.times[mask]).mean()))
        )
    # two-phase: stable at the same lam
    two = TwoPhaseScheme(d=d, lam=lam, law=law)
    for horizon in (150.0, 300.0):
        rows.append(("two-phase", horizon, two.measure_delay(horizon, rng=6)))
    print()
    print(
        format_table(
            ["scheme", "horizon", "mean delay"],
            rows,
            title="Direct delay grows without bound; two-phase holds steady",
        )
    )
    print(
        "\nThe §5 trade: mixing reinstates stability for ANY traffic pattern\n"
        f"(every arc carries ≤ lam), at ~{two.expected_hops():.0f} hops per "
        f"packet instead of ~{d/2:.0f}."
    )


if __name__ == "__main__":
    main()
