#!/usr/bin/env python3
"""Why greedy? The §2.3 pitfall, measured.

A natural first design for dynamic routing is to *batch*: every round,
each node releases one packet; the batch is routed like a static
permutation (Valiant–Brebner phase 1); the next round starts when the
batch is done.  The paper shows this idling design is stable only for
rho < p/(Rd) = O(1/d) — while the non-idling greedy scheme carries any
rho < 1 with O(d) delay.

This script runs both schemes at the same modest load (rho = 0.4) and
prints what happens: greedy cruises near its lower bound, the batch
scheme's origin queues grow without bound.

Run:  python examples/nongreedy_pipelining_pitfall.py
"""

from repro.analysis.tables import format_table
from repro.core.greedy import GreedyHypercubeScheme
from repro.schemes.valiant import PipelinedBatchScheme


def main() -> None:
    d, p, rho, horizon = 5, 0.5, 0.4, 500.0
    lam = rho / p

    greedy = GreedyHypercubeScheme(d=d, lam=lam, p=p)
    t_greedy = greedy.measure_delay(horizon, rng=3)

    batch = PipelinedBatchScheme(d=d, lam=lam, p=p)
    res = batch.run(horizon, rng=4)
    starts, waiting = res.backlog_trajectory()

    print(
        format_table(
            ["quantity", "greedy", "pipelined batches"],
            [
                ("load factor rho", rho, rho),
                ("mean delay", t_greedy, res.mean_delay_delivered()),
                ("delivered fraction", 1.0, float(res.delivered_mask().mean())),
                ("final backlog (packets)", 0, res.final_backlog),
                ("mean round duration", "-", res.mean_round_duration()),
            ],
            title=f"Greedy vs §2.3 pipelined batching (d={d}, rho={rho})",
        )
    )

    # backlog growth timeline: the signature of instability
    k = max(1, len(starts) // 8)
    rows = [
        (f"{starts[i]:.0f}", int(waiting[i])) for i in range(0, len(starts), k)
    ]
    print()
    print(
        format_table(
            ["round start t", "packets stuck at origins"],
            rows,
            title="Pipelined scheme: origin backlog grows linearly (unstable)",
        )
    )
    est = batch.approximate_stability_threshold(res.mean_round_duration())
    print(
        f"\nEstimated pipelined stability threshold: rho* ~ {est:.3f} "
        f"(vs 1.0 for greedy).\nEach node serves one packet per "
        f"~{res.mean_round_duration():.1f}-unit round while its required "
        "arcs sit idle — the idling the paper eliminates."
    )


if __name__ == "__main__":
    main()
