#!/usr/bin/env python3
"""Quickstart: greedy routing on the hypercube in ten lines.

Builds the paper's system for a 6-cube at load factor rho = 0.8 with
uniform destinations, prints the closed-form theory (stability, the
Prop 12/13 delay bracket), simulates half a million packet-hops, and
checks the measurement against the bracket.

Run:  python examples/quickstart.py
"""

from repro import GreedyHypercubeScheme

# d-cube dimension, per-node Poisson rate lam, bit-flip probability p.
# Load factor rho = lam * p = 0.8 — well inside the stable region.
scheme = GreedyHypercubeScheme(d=6, lam=1.6, p=0.5)

print(f"network             : {scheme.cube}")
print(f"load factor rho     : {scheme.rho:.3f}  (stable: {scheme.stable})")
print(f"zero-contention dp  : {scheme.zero_contention_delay():.3f}")
print(f"Prop 13 lower bound : {scheme.delay_lower_bound():.3f}")
print(f"Prop 12 upper bound : {scheme.delay_upper_bound():.3f}")

# Simulate every packet born over 500 time units (seeded => reproducible).
result = scheme.run(horizon=500.0, rng=0)
record = result.delay_record()
print(f"\npackets simulated   : {record.num_packets}")
print(f"measured mean delay : {record.mean_delay():.3f}")

ci = record.mean_delay_ci()
print(f"95% batch-means CI  : [{ci.lo:.3f}, {ci.hi:.3f}]")

inside = scheme.delay_lower_bound() <= record.mean_delay() <= scheme.delay_upper_bound()
print(f"inside the paper's bracket: {inside}")
