#!/usr/bin/env python3
"""Slotted time (§3.4): synchronous hardware, same guarantees.

Real routers are clocked: packets are injected at slot boundaries, not
at arbitrary real times.  §3.4 shows the analysis survives: with
Poisson(lam*tau) batches every tau (1/tau integer), the mean delay
satisfies T~ <= dp/(1-rho) + tau.

This script sweeps the slot length and shows the measured slotted delay
tracking the continuous-time system to within a slot.

Run:  python examples/slotted_time.py
"""

from repro.analysis.tables import format_table
from repro.core.greedy import GreedyHypercubeScheme
from repro.sim.slotted import SlottedGreedyHypercube


def main() -> None:
    d, lam, p, horizon = 5, 1.5, 0.5, 1000.0  # rho = 0.75
    cont = GreedyHypercubeScheme(d=d, lam=lam, p=p)
    t_cont = cont.measure_delay(horizon, rng=11)

    rows = [("continuous", "-", t_cont, cont.delay_upper_bound())]
    for i, tau in enumerate([0.125, 0.25, 0.5, 1.0]):
        s = SlottedGreedyHypercube(d=d, lam=lam, p=p, tau=tau)
        t = s.measure_delay(horizon, rng=12 + i)
        rows.append((f"slotted", tau, t, s.delay_upper_bound()))
    print(
        format_table(
            ["system", "tau", "measured T", "upper bound dp/(1-rho) + tau"],
            rows,
            title=f"Slotted vs continuous time (d={d}, rho={lam * p})",
        )
    )
    print(
        "\nCoarser slots add at most one slot of delay (the batch that\n"
        "arrives with you), exactly as the §3.4 coupling argument predicts."
    )


if __name__ == "__main__":
    main()
