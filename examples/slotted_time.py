#!/usr/bin/env python3
"""Slotted time (§3.4): synchronous hardware, same guarantees.

Real routers are clocked: packets are injected at slot boundaries, not
at arbitrary real times.  §3.4 shows the analysis survives: with
Poisson(lam*tau) batches every tau (1/tau integer), the mean delay
satisfies T~ <= dp/(1-rho) + tau.

This script is a thin wrapper over the registered ``hypercube-slotted``
and ``hypercube-greedy-mid`` scenarios: the tau-sweep (plus the
continuous-time reference) runs as one parallel batch through the
experiment engine, and the printed upper bounds come straight off the
pooled measurements.

Run:  python examples/slotted_time.py
"""

from repro.analysis.tables import format_table
from repro.runner import get_scenario, measure_many


def main() -> None:
    d, lam, p, horizon = 5, 1.5, 0.5, 1000.0  # rho = 0.75
    taus = [0.125, 0.25, 0.5, 1.0]
    continuous = get_scenario("hypercube-greedy-mid").replace(
        name="slotted-continuous", d=d, lam=lam, p=p, horizon=horizon,
        replications=2, base_seed=11,
    )
    slotted = get_scenario("hypercube-slotted").replace(
        d=d, lam=lam, p=p, horizon=horizon, replications=2
    )
    specs = [continuous] + [
        slotted.replace(name=f"slotted-tau{tau}", extra={"tau": tau},
                        base_seed=12 + i)
        for i, tau in enumerate(taus)
    ]
    ms = measure_many(specs, jobs=4)
    rows = [("continuous", "-", ms[0].mean_delay, ms[0].upper_bound)] + [
        ("slotted", tau, m.mean_delay, m.upper_bound)
        for tau, m in zip(taus, ms[1:])
    ]
    print(
        format_table(
            ["system", "tau", "measured T", "upper bound dp/(1-rho) + tau"],
            rows,
            title=f"Slotted vs continuous time (d={d}, rho={lam * p})",
        )
    )
    print(
        "\nCoarser slots add at most one slot of delay (the batch that\n"
        "arrives with you), exactly as the §3.4 coupling argument predicts."
    )


if __name__ == "__main__":
    main()
