#!/usr/bin/env python3
"""The paper's proof technique, executed: FIFO vs Processor Sharing.

The delay bound T <= dp/(1-rho) (Prop 12) is proved by a sample-path
comparison: run the equivalent network Q once under FIFO and once under
PS with the *same* arrivals and the *same* position-indexed routing
decisions; Lemma 10 says every cumulative-departure count satisfies
B(t) >= B~(t), so the FIFO population is dominated by the PS one —
and the PS network is product-form, hence solvable in closed form.

This script performs the coupling literally and prints:
 * the number of domination violations (always 0),
 * the FIFO vs PS delays, and the product-form prediction for PS,
 * a timeline excerpt of B(t) - B~(t) (always >= 0).

Run:  python examples/fifo_vs_ps_proof_device.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.qnetwork import HypercubeQSpec
from repro.queueing.productform import ProductFormNetwork
from repro.sim.feedforward import simulate_markovian
from repro.topology.hypercube import Hypercube


def main() -> None:
    d, p, rho, horizon = 4, 0.5, 0.7, 800.0
    cube = Hypercube(d)
    spec = HypercubeQSpec(cube, p)
    lam = rho / p

    times, arcs = spec.sample_external_arrivals(lam, horizon, rng=7)
    fifo = simulate_markovian(spec, times, arcs, rng=8, record_decisions=True)
    ps = simulate_markovian(
        spec, times, arcs, discipline="ps", decisions=fifo.decisions
    )

    ef, ep = np.sort(fifo.exit_times), np.sort(ps.exit_times)
    violations = int(np.sum(ef > ep + 1e-9))
    t_fifo = float((fifo.exit_times - times).mean())
    t_ps = float((ps.exit_times - times).mean())
    pf = ProductFormNetwork(np.full(cube.num_arcs, rho))
    t_pf = pf.mean_delay(times.shape[0] / horizon)

    print(
        format_table(
            ["quantity", "value"],
            [
                ("packets", times.shape[0]),
                ("domination violations (Lemma 10)", violations),
                ("mean delay, FIFO network Q", t_fifo),
                ("mean delay, PS network Q~ (same sample path)", t_ps),
                ("product-form prediction for Q~", t_pf),
                ("Prop 12 bound dp/(1-rho)", d * p / (1 - rho)),
            ],
            title=f"Coupled FIFO/PS run of network Q (d={d}, rho={rho})",
        )
    )

    # B(t) - B~(t) on a grid: non-negative everywhere.
    grid = np.linspace(0, float(max(ef.max(), ep.max())), 12)
    rows = [
        (
            f"{t:.1f}",
            int(np.searchsorted(ef, t, side="right")),
            int(np.searchsorted(ep, t, side="right")),
        )
        for t in grid
    ]
    print()
    print(
        format_table(
            ["t", "B(t) FIFO departures", "B~(t) PS departures"],
            rows,
            title="Lemma 10 pathwise: B(t) >= B~(t) at every instant",
        )
    )
    print(
        "\nThe chain of the proof: FIFO delay <= PS delay (coupling above),\n"
        "PS network is product form (geometric marginals), so\n"
        "T <= N~ * p / (rho * 2^d) = dp/(1-rho)."
    )


if __name__ == "__main__":
    main()
