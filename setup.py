"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml`` (PEP 621); this file
exists so environments without the ``wheel`` package (offline installs)
can use ``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup()
