"""E5 — heavy traffic: ``p/2 <= (1-rho) T <= d p`` as rho -> 1.

§3.3 proves the scaled delay ``(1-rho) T`` stays inside a window whose
ends the paper conjectures tight (upper for p in (0,1), lower at p=1).
Regenerated series: ``(1-rho) T`` for rho -> 0.98 at d = 5, p = 1/2,
plus the p = 1 case where the limit is exactly ``rho/2 -> 1/2`` (the
paper's tightness example, cf. antipodal_exact_delay).

Thin wrapper over the registered ``hypercube-greedy-heavy`` and
``hypercube-greedy-antipodal`` scenarios; both rho-grids fan out as
one parallel batch.
"""

from repro.core.bounds import heavy_traffic_window
from repro.analysis.tables import format_table
from repro.runner import get_scenario, measure, measure_many

from _common import BENCH_JOBS, SEED, emit

D, P = 5, 0.5
RHOS = [0.8, 0.9, 0.95, 0.98]


def _horizon(rho):
    return 3000.0 if rho >= 0.95 else 1500.0


HEAVY = get_scenario("hypercube-greedy-heavy").replace(
    d=D, p=P, replications=1, seed_policy="sequential"
)
ANTIPODAL = get_scenario("hypercube-greedy-antipodal").replace(
    d=D, replications=1, seed_policy="sequential"
)


def grid():
    uniform = [
        HEAVY.replace(
            name=f"e05-rho{rho}", rho=rho, horizon=_horizon(rho),
            base_seed=SEED + i,
        )
        for i, rho in enumerate(RHOS)
    ]
    antipodal = [
        ANTIPODAL.replace(
            name=f"e05b-rho{rho}", rho=rho, horizon=_horizon(rho),
            base_seed=SEED + 50 + i,
        )
        for i, rho in enumerate(RHOS)
    ]
    return uniform, antipodal


def run_experiment():
    uniform, antipodal = grid()
    ms = measure_many(uniform + antipodal, jobs=BENCH_JOBS)
    lo, hi = heavy_traffic_window(D, P)
    rows = [
        (m.rho, m.mean_delay, (1 - m.rho) * m.mean_delay, lo, hi)
        for m in ms[: len(uniform)]
    ]
    p1_rows = [
        (m.rho, m.mean_delay, (1 - m.rho) * m.mean_delay, m.rho / 2)
        for m in ms[len(uniform):]
    ]
    return rows, p1_rows


def test_e05_heavy_traffic(benchmark):
    benchmark.pedantic(
        lambda: measure(
            HEAVY.replace(name="e05-timing", rho=0.95, horizon=600.0,
                          base_seed=SEED)
        ),
        rounds=3,
        iterations=1,
    )
    rows, p1_rows = run_experiment()
    emit(
        "e05_heavy_traffic",
        format_table(
            ["rho", "T", "(1-rho) T", "window lo (p/2)", "window hi (dp)"],
            rows,
            title="E5  heavy traffic: (1-rho)T inside [p/2, dp] as rho -> 1 (d=5, p=1/2)",
        ),
    )
    lo, hi = heavy_traffic_window(D, P)
    # at the heaviest point the scaled delay is inside the window
    _, _, scaled, _, _ = rows[-1]
    assert lo * 0.9 <= scaled <= hi * 1.05

    emit(
        "e05_heavy_traffic_p1",
        format_table(
            ["rho", "T", "(1-rho) T", "exact limit rho/2"],
            p1_rows,
            title="E5b  p = 1 tightness: (1-rho)T -> 1/2 (lower end of the window)",
        ),
    )
    _, _, scaled1, limit = p1_rows[-1]
    assert scaled1 <= limit * 1.4  # approaches the LOWER end, far from dp
