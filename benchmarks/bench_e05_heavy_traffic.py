"""E5 — heavy traffic: ``p/2 <= (1-rho) T <= d p`` as rho -> 1.

§3.3 proves the scaled delay ``(1-rho) T`` stays inside a window whose
ends the paper conjectures tight (upper for p in (0,1), lower at p=1).
Regenerated series: ``(1-rho) T`` for rho -> 0.98 at d = 5, p = 1/2,
plus the p = 1 case where the limit is exactly ``rho/2 -> 1/2`` (the
paper's tightness example, cf. antipodal_exact_delay).
"""

from repro.analysis.experiments import measure_hypercube_delay
from repro.analysis.tables import format_table
from repro.core.bounds import heavy_traffic_window
from repro.core.greedy import GreedyHypercubeScheme

from _common import SEED, emit

D, P = 5, 0.5
RHOS = [0.8, 0.9, 0.95, 0.98]


def run_experiment():
    lo, hi = heavy_traffic_window(D, P)
    rows = []
    for i, rho in enumerate(RHOS):
        horizon = 3000.0 if rho >= 0.95 else 1500.0
        m = measure_hypercube_delay(D, rho, p=P, horizon=horizon, rng=SEED + i)
        rows.append((rho, m.mean_delay, (1 - rho) * m.mean_delay, lo, hi))
    return rows


def run_p1_case():
    rows = []
    for i, rho in enumerate(RHOS):
        scheme = GreedyHypercubeScheme(d=D, lam=rho, p=1.0)
        horizon = 3000.0 if rho >= 0.95 else 1500.0
        t = scheme.measure_delay(horizon, rng=SEED + 50 + i)
        rows.append((rho, t, (1 - rho) * t, rho / 2))
    return rows


def test_e05_heavy_traffic(benchmark):
    benchmark.pedantic(
        lambda: measure_hypercube_delay(D, 0.95, p=P, horizon=600.0, rng=SEED),
        rounds=3,
        iterations=1,
    )
    rows = run_experiment()
    emit(
        "e05_heavy_traffic",
        format_table(
            ["rho", "T", "(1-rho) T", "window lo (p/2)", "window hi (dp)"],
            rows,
            title="E5  heavy traffic: (1-rho)T inside [p/2, dp] as rho -> 1 (d=5, p=1/2)",
        ),
    )
    lo, hi = heavy_traffic_window(D, P)
    # at the heaviest point the scaled delay is inside the window
    _, _, scaled, _, _ = rows[-1]
    assert lo * 0.9 <= scaled <= hi * 1.05

    p1_rows = run_p1_case()
    emit(
        "e05_heavy_traffic_p1",
        format_table(
            ["rho", "T", "(1-rho) T", "exact limit rho/2"],
            p1_rows,
            title="E5b  p = 1 tightness: (1-rho)T -> 1/2 (lower end of the window)",
        ),
    )
    _, _, scaled1, limit = p1_rows[-1]
    assert scaled1 <= limit * 1.4  # approaches the LOWER end, far from dp
