"""E17 — §2.2 extension: arbitrary translation-invariant laws.

The paper's remark at the end of §2.2: the stability condition and the
lower bounds survive for any law ``f(x XOR z)`` with per-dimension
loads ``rho_j = lam q_j`` and ``rho = max_j rho_j``.

Regenerated table, for a strongly skewed law (dimension 0 flipped 15x
more often than dimension 2): measured per-dimension arc flows vs
``lam q_j`` (generalised Prop 5), the generalised lower bounds vs the
measured delay, and stability driven by the *worst* dimension only.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.general import (
    general_arc_rates,
    general_load_factor,
    general_oblivious_lower_bound,
    general_zero_contention_delay,
)
from repro.sim.feedforward import simulate_hypercube_greedy
from repro.sim.measurement import arc_arrival_counts
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import TranslationInvariantLaw
from repro.traffic.workload import HypercubeWorkload

from _common import SEED, emit

D = 3
HORIZON = 4000.0


def make_law():
    pmf = np.zeros(1 << D)
    pmf[0b001] = 0.55
    pmf[0b011] = 0.20
    pmf[0b100] = 0.05
    pmf[0b000] = 0.20
    return TranslationInvariantLaw(D, pmf)


def run_sim(lam, horizon, seed):
    cube = Hypercube(D)
    law = make_law()
    wl = HypercubeWorkload(cube, lam, law)
    sample = wl.generate(horizon, rng=seed)
    return cube, law, simulate_hypercube_greedy(cube, sample, record_arc_log=True)


def run_experiment():
    lam = 1.2  # rho = 1.2 * 0.75 = 0.9 on dimension 0
    cube, law, res = run_sim(lam, HORIZON, SEED)
    measured = arc_arrival_counts(res.arc_log.arc, cube.num_arcs) / HORIZON
    expected = general_arc_rates(lam, law)
    dim_rows = []
    for j in range(D):
        sl = slice(8 * j, 8 * (j + 1))
        dim_rows.append(
            (j, float(law.flip_probabilities()[j]), float(expected[sl].mean()),
             float(measured[sl].mean()))
        )
    t = res.delay_record().mean_delay()
    summary = [
        ("load factor rho = max_j rho_j", general_load_factor(lam, law)),
        ("E[H] = sum q_j (zero contention)", general_zero_contention_delay(law)),
        ("generalised Prop 3 lower bound", general_oblivious_lower_bound(lam, law)),
        ("measured mean delay", t),
    ]
    return dim_rows, summary


def test_e17_general_law(benchmark):
    benchmark.pedantic(lambda: run_sim(1.2, 400.0, SEED), rounds=3, iterations=1)
    dim_rows, summary = run_experiment()
    emit(
        "e17_general_law",
        format_table(
            ["dim j", "q_j", "lam*q_j (gen. Prop 5)", "measured arc rate"],
            dim_rows,
            title="E17a  skewed translation-invariant law: per-dimension flows",
        )
        + "\n\n"
        + format_table(
            ["quantity", "value"],
            summary,
            title="E17b  generalised §2.2 calculus vs measurement (d=3, lam=1.2)",
        ),
    )
    for _, _, theory, meas in dim_rows:
        assert meas == approx_rel(theory, 0.05)
    # delay dominated by the generalised lower bound, and finite
    lb, t = summary[2][1], summary[3][1]
    assert t >= lb * 0.95


def approx_rel(value, rel):
    import pytest

    return pytest.approx(value, rel=rel)
