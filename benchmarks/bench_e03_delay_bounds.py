"""E3 — Props 12+13: the delay sandwich across the load range.

The paper's headline quantitative claim:

    d p + p rho / (2 (1 - rho))  <=  T  <=  d p / (1 - rho).

Regenerated series: measured T vs rho for d in {4, 6, 8} at p = 1/2,
printed next to both bounds.  The shape to check: T sits between the
curves, hugging the lower bound at small rho and bending up like
1/(1-rho) near saturation.

The grid derives from the registered ``hypercube-greedy-mid`` scenario
and fans out through the parallel experiment engine; sequential
single-replication seeds keep the numbers identical to the historical
hand-rolled loop.
"""

from repro.analysis.tables import format_table
from repro.runner import get_scenario, measure, measure_many

from _common import BENCH_JOBS, SEED, emit

RHOS = [0.2, 0.4, 0.6, 0.8, 0.9]
DIMS = [4, 6, 8]

BASE = get_scenario("hypercube-greedy-mid").replace(
    replications=1, seed_policy="sequential"
)


def grid(horizon=1200.0):
    return [
        BASE.replace(
            name=f"e03-d{d}-rho{rho}",
            d=d,
            rho=rho,
            horizon=horizon,
            base_seed=SEED + 100 * d + i,
        )
        for d in DIMS
        for i, rho in enumerate(RHOS)
    ]


def run_experiment(horizon=1200.0):
    return [
        (m.d, m.rho, m.lower_bound, m.mean_delay, m.upper_bound, m.within_bounds)
        for m in measure_many(grid(horizon), jobs=BENCH_JOBS)
    ]


def test_e03_delay_bounds(benchmark):
    benchmark.pedantic(
        lambda: measure(
            BASE.replace(name="e03-timing", d=6, rho=0.8, horizon=300.0,
                         base_seed=SEED)
        ),
        rounds=3,
        iterations=1,
    )
    rows = run_experiment()
    emit(
        "e03_delay_bounds",
        format_table(
            ["d", "rho", "Prop13 lower", "measured T", "Prop12 upper", "inside"],
            rows,
            title="E3  Props 12/13: dp + p*rho/(2(1-rho)) <= T <= dp/(1-rho)  (p = 1/2)",
        ),
    )
    # statistical slack: the point estimate may graze the lower bound
    for _, _, lo, t, hi, _ in rows:
        assert lo * 0.95 <= t <= hi * 1.05
