"""E3 — Props 12+13: the delay sandwich across the load range.

The paper's headline quantitative claim:

    d p + p rho / (2 (1 - rho))  <=  T  <=  d p / (1 - rho).

Regenerated series: measured T vs rho for d in {4, 6, 8} at p = 1/2,
printed next to both bounds.  The shape to check: T sits between the
curves, hugging the lower bound at small rho and bending up like
1/(1-rho) near saturation.
"""

from repro.analysis.experiments import measure_hypercube_delay
from repro.analysis.tables import format_table

from _common import SEED, emit

RHOS = [0.2, 0.4, 0.6, 0.8, 0.9]
DIMS = [4, 6, 8]


def run_experiment(horizon=1200.0):
    rows = []
    for d in DIMS:
        for i, rho in enumerate(RHOS):
            m = measure_hypercube_delay(
                d, rho, p=0.5, horizon=horizon, rng=SEED + 100 * d + i
            )
            rows.append(
                (d, rho, m.lower_bound, m.mean_delay, m.upper_bound, m.within_bounds)
            )
    return rows


def test_e03_delay_bounds(benchmark):
    benchmark.pedantic(
        lambda: measure_hypercube_delay(6, 0.8, horizon=300.0, rng=SEED),
        rounds=3,
        iterations=1,
    )
    rows = run_experiment()
    emit(
        "e03_delay_bounds",
        format_table(
            ["d", "rho", "Prop13 lower", "measured T", "Prop12 upper", "inside"],
            rows,
            title="E3  Props 12/13: dp + p*rho/(2(1-rho)) <= T <= dp/(1-rho)  (p = 1/2)",
        ),
    )
    # statistical slack: the point estimate may graze the lower bound
    for _, _, lo, t, hi, _ in rows:
        assert lo * 0.95 <= t <= hi * 1.05
