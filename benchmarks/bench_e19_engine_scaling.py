"""E19 — methodology: fast-engine throughput scaling.

Not a paper claim, but the enabler of the whole reproduction: the
level-by-level vectorised Lindley solver's cost per packet-hop should
stay roughly flat as the cube grows (work is O(total hops) plus an
O(arcs) grouping overhead per level), so large-d experiments remain
laptop-scale.  Regenerated table: packets, hops, runtime, and hops/sec
for d = 4..10 at fixed rho.
"""

import time

from repro.analysis.tables import format_table
from repro.core.greedy import GreedyHypercubeScheme
from repro.core.load import lam_for_load

from _common import SEED, emit

DIMS = [4, 6, 8, 10]
RHO, P = 0.7, 0.5


def run_one(d, horizon, seed):
    scheme = GreedyHypercubeScheme(d=d, lam=lam_for_load(RHO, P), p=P)
    t0 = time.perf_counter()
    res = scheme.run(horizon, rng=seed)
    elapsed = time.perf_counter() - t0
    return res, elapsed


def run_experiment():
    rows = []
    for i, d in enumerate(DIMS):
        # shrink the horizon as the node count grows: constant packet budget
        horizon = max(50.0, 120_000.0 / (lam_for_load(RHO, P) * 2**d))
        res, elapsed = run_one(d, horizon, SEED + i)
        hops = int(res.hops.sum())
        rows.append(
            (
                d,
                2**d,
                res.sample.num_packets,
                hops,
                elapsed,
                hops / elapsed if elapsed > 0 else float("inf"),
            )
        )
    return rows


def test_e19_engine_scaling(benchmark):
    benchmark.pedantic(lambda: run_one(8, 60.0, SEED), rounds=3, iterations=1)
    rows = run_experiment()
    emit(
        "e19_engine_scaling",
        format_table(
            ["d", "nodes", "packets", "hops", "runtime (s)", "hops / s"],
            rows,
            title=f"E19  vectorised engine throughput at rho={RHO}",
        ),
    )
    # throughput stays within an order of magnitude across d
    rates = [r[5] for r in rows]
    assert min(rates) > max(rates) / 12
    # and is absolutely fast enough for the experiment suite
    assert max(rates) > 100_000
