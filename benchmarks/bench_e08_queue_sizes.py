"""E8 — §3.3 queue sizes: O(d) per node, O(d 2^d) total w.h.p.

Claims regenerated:

* the mean number of packets per node is at most ``d rho/(1-rho)``;
* the total population exceeds ``(1+eps) d 2^d rho/(1-rho)`` only with
  small probability (Chernoff/geometric tail), compared against the
  product-form Chernoff bound evaluated numerically.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.bounds import mean_queue_per_node_bound, total_population_bound
from repro.core.greedy import GreedyHypercubeScheme
from repro.core.load import lam_for_load
from repro.queueing.productform import ProductFormNetwork
from repro.sim.measurement import PopulationTracker

from _common import SEED, emit

D, P, RHO = 5, 0.5, 0.8
HORIZON = 2500.0


def run(horizon, seed):
    scheme = GreedyHypercubeScheme(d=D, lam=lam_for_load(RHO, P), p=P)
    res = scheme.run(horizon, rng=seed)
    return scheme, res


def run_experiment():
    scheme, res = run(HORIZON, SEED)
    pt = PopulationTracker.from_intervals(res.sample.times, res.delivery)
    grid = np.linspace(HORIZON * 0.3, HORIZON * 0.9, 3000)
    pops = np.array([pt.at(t) for t in grid])
    n_nodes = scheme.cube.num_nodes
    mean_total = float(pops.mean())
    bound_total = total_population_bound(D, scheme.lam, P)
    rows = [
        ("mean packets / node", mean_total / n_nodes,
         mean_queue_per_node_bound(D, scheme.lam, P)),
        ("mean total population", mean_total, bound_total),
        ("max total population", float(pops.max()), float("nan")),
    ]
    # empirical whp claim at eps = 0.5 vs the Chernoff bound
    eps = 0.5
    exceed = float(np.mean(pops > (1 + eps) * bound_total))
    chernoff = ProductFormNetwork(
        np.full(D * 2**D, RHO)
    ).population_quantile_bound(eps)
    rows.append((f"P[N > {1+eps:.1f} * bound] (emp)", exceed, chernoff))
    return rows


def test_e08_queue_sizes(benchmark):
    benchmark.pedantic(lambda: run(400.0, SEED), rounds=3, iterations=1)
    rows = run_experiment()
    emit(
        "e08_queue_sizes",
        format_table(
            ["quantity", "measured", "bound / theory"],
            rows,
            title=f"E8  queue sizes (d={D}, rho={RHO}): O(d) per node, Chernoff tail",
        ),
    )
    per_node, per_node_bound = rows[0][1], rows[0][2]
    assert per_node <= per_node_bound
    total, total_bound = rows[1][1], rows[1][2]
    assert total <= total_bound
    exceed, chernoff = rows[3][1], rows[3][2]
    assert exceed <= max(chernoff * 5, 0.01)  # bound holds with margin
