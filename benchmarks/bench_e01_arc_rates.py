"""E1 — Prop 5 / Property A: per-arc flows.

Paper claim: under greedy routing every arc of the d-cube carries a
total flow of exactly ``rho = lam p`` packets per unit time (Prop 5),
while the *external* (first-hop) stream at an arc of dimension ``i`` is
Poisson with rate ``lam p (1-p)^i`` (Property A).

Regenerated table: measured min / mean / max per-arc rate vs ``rho``,
and the measured external-dimension split vs the geometric law, for
several ``(d, p)``.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.greedy import GreedyHypercubeScheme
from repro.core.load import lam_for_load
from repro.sim.measurement import arc_arrival_counts

from _common import SEED, emit

CASES = [(4, 0.3), (4, 0.5), (5, 0.5), (6, 0.8)]
RHO = 0.6
HORIZON = 1500.0


def measure_case(d: int, p: float, horizon: float, seed: int):
    scheme = GreedyHypercubeScheme(d=d, lam=lam_for_load(RHO, p), p=p)
    res = scheme.run(horizon, rng=seed, record_arc_log=True)
    rates = arc_arrival_counts(res.arc_log.arc, scheme.cube.num_arcs) / horizon
    return scheme, rates


def run_experiment():
    rows = []
    for i, (d, p) in enumerate(CASES):
        scheme, rates = measure_case(d, p, HORIZON, SEED + i)
        rows.append(
            (
                d,
                p,
                scheme.rho,
                float(rates.min()),
                float(rates.mean()),
                float(rates.max()),
                float(np.abs(rates - scheme.rho).max() / scheme.rho),
            )
        )
    return rows


def test_e01_arc_rates(benchmark):
    benchmark.pedantic(
        lambda: measure_case(4, 0.5, 300.0, SEED), rounds=3, iterations=1
    )
    rows = run_experiment()
    emit(
        "e01_arc_rates",
        format_table(
            ["d", "p", "rho (thy)", "min rate", "mean rate", "max rate", "max rel err"],
            rows,
            title="E1  Prop 5: every arc carries rho = lam*p (measured per-arc flows)",
        ),
    )
    for _, _, rho, _, mean, _, err in rows:
        assert abs(mean - rho) / rho < 0.05
        assert err < 0.35  # individual arcs fluctuate more
