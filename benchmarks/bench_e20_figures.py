"""E20 — regenerate the paper's figures (network diagrams).

Fig. 1a (3-cube), Fig. 1b (network Q for the 3-cube), Fig. 2 (the
Lemma 9 gadgets), Fig. 3a (2-butterfly), Fig. 3b (network R for the
2-butterfly) are emitted as Graphviz DOT files under
``benchmarks/results/figures/`` — render with ``dot -Tpdf``.

Structural assertions check each diagram against the paper's counts
(nodes, arcs, routing edges).
"""

from repro.core.qnetwork import ButterflyRSpec, HypercubeQSpec
from repro.topology.butterfly import Butterfly
from repro.topology.hypercube import Hypercube
from repro.viz.diagrams import (
    butterfly_dot,
    fig2_networks_dot,
    hypercube_dot,
    qnetwork_dot,
    rnetwork_dot,
)

from _common import RESULTS_DIR


FIGURES = {
    # name -> (generator, expected node-count substring checks)
    "fig1a_hypercube_d3": lambda: hypercube_dot(Hypercube(3)),
    "fig1b_network_q_d3": lambda: qnetwork_dot(HypercubeQSpec(Hypercube(3), 0.5)),
    "fig2_lemma9_networks": fig2_networks_dot,
    "fig3a_butterfly_d2": lambda: butterfly_dot(Butterfly(2)),
    "fig3b_network_r_d2": lambda: rnetwork_dot(ButterflyRSpec(Butterfly(2), 0.5)),
}


def write_figures():
    fig_dir = RESULTS_DIR / "figures"
    fig_dir.mkdir(parents=True, exist_ok=True)
    out = {}
    for name, gen in FIGURES.items():
        text = gen()
        (fig_dir / f"{name}.dot").write_text(text + "\n")
        out[name] = text
    return out


def test_e20_figures(benchmark):
    figs = benchmark(write_figures)

    # Fig 1a: 8 nodes, 12 undirected (24 directed) cube edges
    fig1a = figs["fig1a_hypercube_d3"]
    assert fig1a.count("[label=\"") >= 8
    assert fig1a.count("dir=both") == 12

    # Fig 1b: 24 servers; routing edges = per (dim i, x): d-1-i targets
    fig1b = figs["fig1b_network_q_d3"]
    assert fig1b.count("shape=box") == 1
    assert fig1b.count(" -> ") == 8 * (2 + 1 + 0)  # 24 routing edges

    # Fig 2: three subgraphs, 2 edges each
    fig2 = figs["fig2_lemma9_networks"]
    assert fig2.count("subgraph cluster_") == 3
    assert fig2.count(" -> ") == 6

    # Fig 3a: 12 nodes, 16 arcs for d=2
    fig3a = figs["fig3a_butterfly_d2"]
    assert fig3a.count(" -> ") == 16

    # Fig 3b: 16 servers, routing only between levels 0 and 1:
    # 8 sources x 2 targets
    fig3b = figs["fig3b_network_r_d2"]
    assert fig3b.count(" -> ") == 16

    print(f"\n[figures written to {RESULTS_DIR / 'figures'}]")
