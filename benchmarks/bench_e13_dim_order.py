"""E13 — ablation: dimension crossing order.

The paper fixes *increasing index order*; the analysis needs the
levelled structure that any **fixed** global order provides, while the
scheme would route correctly under any order.  Regenerated table:

* increasing vs decreasing vs a fixed shuffled order — identical delay
  law (node-relabelling symmetry), measured to agree within noise;
* per-packet *random* order (non-levelled, event-driven simulation) —
  delay measured against the same bounds; the paper's analysis does not
  cover it, but the measurement shows the increasing-order rule costs
  nothing.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.bounds import greedy_delay_lower_bound, greedy_delay_upper_bound
from repro.core.load import lam_for_load
from repro.schemes.random_order import simulate_fixed_order, simulate_random_order
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import BernoulliFlipLaw
from repro.traffic.workload import HypercubeWorkload

from _common import SEED, emit

D, P, RHO = 5, 0.5, 0.8
HORIZON = 700.0


def _workload(horizon, seed):
    cube = Hypercube(D)
    wl = HypercubeWorkload(cube, lam_for_load(RHO, P), BernoulliFlipLaw(D, P))
    return cube, wl.generate(horizon, rng=seed)


def _steady_mean(sample, delivery, warmup=0.25):
    mask = sample.times >= warmup * sample.horizon
    return float((delivery[mask] - sample.times[mask]).mean())


def run_orders(horizon, seed):
    cube, sample = _workload(horizon, seed)
    rng = np.random.default_rng(seed)
    shuffled = [int(x) for x in rng.permutation(D)]
    out = {}
    out["increasing"] = _steady_mean(
        sample, simulate_fixed_order(cube, sample, list(range(D))).delivery
    )
    out["decreasing"] = _steady_mean(
        sample, simulate_fixed_order(cube, sample, list(range(D - 1, -1, -1))).delivery
    )
    out[f"fixed shuffle {shuffled}"] = _steady_mean(
        sample, simulate_fixed_order(cube, sample, shuffled).delivery
    )
    out["random per packet"] = _steady_mean(
        sample, simulate_random_order(cube, sample, rng=seed + 1).delivery
    )
    return out


def run_experiment():
    lam = lam_for_load(RHO, P)
    lo = greedy_delay_lower_bound(D, lam, P)
    hi = greedy_delay_upper_bound(D, lam, P)
    out = run_orders(HORIZON, SEED)
    return [(name, t, lo, hi) for name, t in out.items()]


def test_e13_dim_order(benchmark):
    benchmark.pedantic(lambda: run_orders(120.0, SEED), rounds=3, iterations=1)
    rows = run_experiment()
    emit(
        "e13_dim_order",
        format_table(
            ["crossing order", "measured T", "Prop13 lower", "Prop12 upper"],
            rows,
            title=f"E13  dimension-order ablation (d={D}, rho={RHO}, p={P})",
        ),
    )
    t_inc = rows[0][1]
    for name, t, lo, hi in rows:
        # every ordering performs like the canonical one (within noise)
        assert abs(t - t_inc) / t_inc < 0.1, name
        assert lo * 0.9 <= t <= hi * 1.1, name
