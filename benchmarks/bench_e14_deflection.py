"""E14 — baseline: deflection (hot-potato) routing vs greedy.

§1.2 positions greedy store-and-forward against the deflection schemes
of [GrH89]/[Var90].  Regenerated table: mean delay and mean extra hops
(deflections) vs load, next to the greedy scheme's slotted delay at the
same parameters.  The shape: deflection matches greedy at light load
(no contention, both follow shortest paths) and degrades as load
grows, paying extra hops instead of queueing time.

Thin wrapper over the registered ``hypercube-deflection`` and
``hypercube-slotted`` scenarios; the deflection count rides along as a
pooled side metric of the measurement.
"""

from repro.analysis.tables import format_table
from repro.runner import get_scenario, measure, measure_many

from _common import BENCH_JOBS, SEED, emit

D, P = 5, 0.5
LAMS = [0.2, 0.8, 1.4]  # rho = 0.1, 0.4, 0.7
SLOTS = 600

DEFLECTION = get_scenario("hypercube-deflection").replace(
    d=D, p=P, horizon=float(SLOTS), replications=1, seed_policy="sequential"
)
SLOTTED = get_scenario("hypercube-slotted").replace(
    d=D, p=P, horizon=float(SLOTS), extra={"tau": 1.0},
    replications=1, seed_policy="sequential",
)


def grid():
    deflect = [
        DEFLECTION.replace(name=f"e14-deflect-lam{lam}", lam=lam,
                           base_seed=SEED + i)
        for i, lam in enumerate(LAMS)
    ]
    slotted = [
        SLOTTED.replace(name=f"e14-greedy-lam{lam}", lam=lam,
                        base_seed=SEED + 10 + i)
        for i, lam in enumerate(LAMS)
    ]
    return deflect, slotted


def run_experiment():
    deflect, slotted = grid()
    ms = measure_many(deflect + slotted, jobs=BENCH_JOBS)
    rows = []
    for i, lam in enumerate(LAMS):
        m_def, m_slot = ms[i], ms[len(LAMS) + i]
        rows.append(
            (lam, lam * P, m_def.mean_delay,
             m_def.metric("mean_deflections"), m_slot.mean_delay)
        )
    return rows


def test_e14_deflection(benchmark):
    benchmark.pedantic(
        lambda: measure(
            DEFLECTION.replace(name="e14-timing", lam=0.8, horizon=80.0,
                               base_seed=SEED)
        ),
        rounds=3,
        iterations=1,
    )
    rows = run_experiment()
    emit(
        "e14_deflection",
        format_table(
            ["lam", "rho", "deflection T", "mean extra hops", "greedy slotted T"],
            rows,
            title=f"E14  deflection vs greedy on the d={D} cube (slotted, p={P})",
        ),
    )
    light = rows[0]
    assert light[3] < 0.1  # no deflections at light load
    assert abs(light[2] - light[4]) < 1.0  # both ~ shortest path time
    heavy = rows[-1]
    assert heavy[3] > light[3]  # deflections grow with load
