"""E14 — baseline: deflection (hot-potato) routing vs greedy.

§1.2 positions greedy store-and-forward against the deflection schemes
of [GrH89]/[Var90].  Regenerated table: mean delay and mean extra hops
(deflections) vs load, next to the greedy scheme's slotted delay at the
same parameters.  The shape: deflection matches greedy at light load
(no contention, both follow shortest paths) and degrades as load
grows, paying extra hops instead of queueing time.
"""

from repro.analysis.tables import format_table
from repro.schemes.deflection import DeflectionRouter
from repro.sim.slotted import SlottedGreedyHypercube

from _common import SEED, emit

D, P = 5, 0.5
LAMS = [0.2, 0.8, 1.4]  # rho = 0.1, 0.4, 0.7
SLOTS = 600


def run_deflection(lam, slots, seed):
    return DeflectionRouter(d=D, lam=lam, p=P).run(slots, rng=seed)


def run_experiment():
    rows = []
    for i, lam in enumerate(LAMS):
        res = run_deflection(lam, SLOTS, SEED + i)
        greedy = SlottedGreedyHypercube(d=D, lam=lam, p=P, tau=1.0)
        t_greedy = greedy.measure_delay(float(SLOTS), rng=SEED + 10 + i)
        rows.append(
            (
                lam,
                lam * P,
                res.mean_delay(),
                res.mean_deflections(),
                t_greedy,
            )
        )
    return rows


def test_e14_deflection(benchmark):
    benchmark.pedantic(lambda: run_deflection(0.8, 80, SEED), rounds=3, iterations=1)
    rows = run_experiment()
    emit(
        "e14_deflection",
        format_table(
            ["lam", "rho", "deflection T", "mean extra hops", "greedy slotted T"],
            rows,
            title=f"E14  deflection vs greedy on the d={D} cube (slotted, p={P})",
        ),
    )
    light = rows[0]
    assert light[3] < 0.1  # no deflections at light load
    assert abs(light[2] - light[4]) < 1.0  # both ~ shortest path time
    heavy = rows[-1]
    assert heavy[3] > light[3]  # deflections grow with load
