"""Serving-layer baseline: cache-hit latency and miss throughput.

Emits ``BENCH_serve.json`` at the **repo root**, next to
``BENCH_engines.json``, pinning what the ``repro serve`` tier adds on
top of the engine numbers:

* ``hit_latency_s`` — p50/p99 over repeated ``POST /v1/measure`` of an
  already-cached spec: the full socket + parse + content-hash + store
  probe round trip, the operation a busy server performs millions of
  times.  The smoke gate asserts p50 under 100 ms (locally it is
  single-digit milliseconds).
* ``miss`` — wall-clock and throughput for a fleet of
  **distinct** specs POSTed together and drained through the worker
  pool at ``--workers 2``, measured POST-to-terminal (replications per
  second across the fleet).
* ``cancel`` — a cancelled job's round trip: POST, cancel mid-run,
  verify the persisted per-replication cells, resubmit, and confirm
  the resumed job reuses them (``resumed_cached`` > 0 whenever the
  cancel landed mid-run).

The exercise doubles as the CI smoke: every step asserts its
functional contract (hit served from cache, cancel honoured, resume
from cells) before timing is recorded.

Run with::

    python benchmarks/bench_serve.py            # full (the pinned JSON)
    python benchmarks/bench_serve.py --quick    # CI smoke sizes
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.runner import ResultsStore  # noqa: E402
from repro.serve import ServerThread  # noqa: E402

#: the cached cell whose hit latency is pinned
HIT_SPEC = {"name": "bench-hit", "d": 4, "rho": 0.6, "horizon": 120.0,
            "replications": 4}
#: distinct cells drained through the pool for the miss-throughput leg
FULL_MISSES = 8
QUICK_MISSES = 4
MISS_SPEC = {"name": "bench-miss", "d": 4, "rho": 0.5, "horizon": 200.0,
             "replications": 8}
#: the cancel leg: big enough that the cancel lands mid-run
CANCEL_SPEC = {"name": "bench-cancel", "d": 6, "rho": 0.8,
               "horizon": 1500.0, "replications": 40}
QUICK_CANCEL = {"name": "bench-cancel", "d": 5, "rho": 0.8,
                "horizon": 800.0, "replications": 24}
HIT_SAMPLES = 200
QUICK_HIT_SAMPLES = 50


def request(method, url, payload=None, timeout=300.0):
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def poll_terminal(base, job_id, timeout=600.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, body = request("GET", f"{base}/v1/jobs/{job_id}")
        if body["state"] in ("done", "failed", "cancelled"):
            return body
        time.sleep(0.05)
    raise RuntimeError(f"job {job_id} never finished")


def bench_hits(base, samples):
    """POST a spec once to fill the cache, then time repeated hits."""
    status, body = request("POST", f"{base}/v1/measure", HIT_SPEC)
    assert status == 202, body
    assert poll_terminal(base, body["job"])["state"] == "done"
    latencies = []
    for _ in range(samples):
        t0 = time.perf_counter()
        status, body = request("POST", f"{base}/v1/measure", HIT_SPEC)
        latencies.append(time.perf_counter() - t0)
        assert status == 200 and body["cache"] == "hit", body
    latencies.sort()
    return {
        "samples": samples,
        "p50": round(statistics.median(latencies), 6),
        "p99": round(latencies[int(0.99 * (len(latencies) - 1))], 6),
        "max": round(latencies[-1], 6),
    }


def bench_misses(base, count):
    """POST *count* distinct specs at once; drain through the pool."""
    t0 = time.perf_counter()
    jobs = []
    for i in range(count):
        spec = dict(MISS_SPEC, base_seed=i)
        status, body = request("POST", f"{base}/v1/measure", spec)
        assert status == 202, body
        jobs.append(body["job"])
    for job_id in jobs:
        assert poll_terminal(base, job_id)["state"] == "done", job_id
    elapsed = time.perf_counter() - t0
    reps = count * MISS_SPEC["replications"]
    return {
        "specs": count,
        "replications": reps,
        "wall_s": round(elapsed, 3),
        "throughput_rps": round(reps / elapsed, 2),
    }


def bench_cancel(base, store_root, spec):
    """Cancel mid-run, then resubmit and confirm the resume."""
    before = ResultsStore(store_root).stats().replications
    status, body = request("POST", f"{base}/v1/measure", spec)
    assert status == 202, body
    job_id = body["job"]
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        _, state = request("GET", f"{base}/v1/jobs/{job_id}")
        if state["progress"]["completed"] >= 1 or state["state"] in (
            "done", "failed", "cancelled",
        ):
            break
        time.sleep(0.02)
    request("DELETE", f"{base}/v1/jobs/{job_id}")
    terminal = poll_terminal(base, job_id)
    persisted = ResultsStore(store_root).stats().replications - before
    status, body = request("POST", f"{base}/v1/measure", spec)
    resumed_cached = 0
    if status == 202:
        resumed = poll_terminal(base, body["job"])
        assert resumed["state"] == "done", resumed
        resumed_cached = resumed["progress"]["cached"]
    if terminal["state"] == "cancelled":
        # the whole point: the resumed job reused the persisted cells
        assert resumed_cached >= 1, (persisted, resumed_cached)
    return {
        "cancel_honoured": terminal["state"] == "cancelled",
        "persisted_replications": persisted,
        "resumed_cached": resumed_cached,
        "total": spec["replications"],
    }


def main() -> int:
    quick = "--quick" in sys.argv
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        cache_dir = Path(tmp) / "cache"
        server = ServerThread(
            cache_dir=cache_dir, workers=2, backend="locked"
        ).start()
        try:
            base = server.base_url
            hits = bench_hits(
                base, QUICK_HIT_SAMPLES if quick else HIT_SAMPLES
            )
            misses = bench_misses(
                base, QUICK_MISSES if quick else FULL_MISSES
            )
            cancel = bench_cancel(
                base, cache_dir, QUICK_CANCEL if quick else CANCEL_SPEC
            )
        finally:
            server.stop()
    payload = {
        "benchmark": "serve",
        "quick": quick,
        "workers": 2,
        "host_cpu_cores": os.cpu_count(),
        "hit_latency_s": hits,
        "miss": misses,
        "cancel": cancel,
    }
    path = ROOT / "BENCH_serve.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=1, sort_keys=True))
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
