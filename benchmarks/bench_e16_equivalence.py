"""E16 — simulator cross-validation (methodology experiment).

Three independent implementations must agree:

* the vectorised feed-forward engine vs the event-driven engine —
  identical FIFO and PS sample paths (max |delta| at float round-off);
* the physical hypercube vs network Q with Lemma-4 Markovian routing —
  equal delay statistics;
* runtime comparison of the two engines (the reason the fast path
  exists).
"""

import time

import numpy as np

from repro.analysis.tables import format_table
from repro.core.qnetwork import HypercubeQSpec
from repro.sim.eventsim import hypercube_packet_paths, simulate_paths_event_driven
from repro.sim.feedforward import simulate_hypercube_greedy, simulate_markovian
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import BernoulliFlipLaw
from repro.traffic.workload import HypercubeWorkload

from _common import SEED, emit

D, P, LAM = 4, 0.5, 1.4
HORIZON = 400.0


def _sample(horizon, seed):
    cube = Hypercube(D)
    wl = HypercubeWorkload(cube, LAM, BernoulliFlipLaw(D, P))
    return cube, wl.generate(horizon, rng=seed)


def run_fast(cube, sample):
    return simulate_hypercube_greedy(cube, sample)


def run_event(cube, sample):
    return simulate_paths_event_driven(
        cube.num_arcs, sample.times, hypercube_packet_paths(cube, sample)
    )


def run_experiment():
    cube, sample = _sample(HORIZON, SEED)
    t0 = time.perf_counter()
    ff = run_fast(cube, sample)
    t_fast = time.perf_counter() - t0
    t0 = time.perf_counter()
    ev = run_event(cube, sample)
    t_event = time.perf_counter() - t0
    fifo_dev = float(np.abs(ff.delivery - ev.delivery).max())

    ff_ps = simulate_hypercube_greedy(cube, sample, discipline="ps")
    ev_ps = simulate_paths_event_driven(
        cube.num_arcs,
        sample.times,
        hypercube_packet_paths(cube, sample),
        discipline="ps",
    )
    ps_dev = float(np.abs(ff_ps.delivery - ev_ps.delivery).max())

    # physical vs network-Q statistics
    moving = (sample.origins ^ sample.destinations) != 0
    t_phys = float(ff.delays()[moving].mean())
    spec = HypercubeQSpec(cube, P)
    times, arcs = spec.sample_external_arrivals(LAM, 4 * HORIZON, rng=SEED + 1)
    qres = simulate_markovian(spec, times, arcs, rng=SEED + 2)
    t_q = float((qres.exit_times - times).mean())

    rows = [
        ("max |FIFO path deviation|", fifo_dev, "0 (float round-off)"),
        ("max |PS path deviation|", ps_dev, "0 (float round-off)"),
        ("physical cube mean delay (movers)", t_phys, "matches network Q"),
        ("network Q mean delay", t_q, "matches physical"),
        ("fast engine runtime (s)", t_fast, ""),
        ("event engine runtime (s)", t_event, ""),
        ("speedup", t_event / t_fast, ""),
    ]
    return rows, sample.num_packets


def test_e16_equivalence(benchmark):
    cube, sample = _sample(120.0, SEED)
    benchmark.pedantic(lambda: run_fast(cube, sample), rounds=5, iterations=1)
    rows, n = run_experiment()
    emit(
        "e16_equivalence",
        format_table(
            ["check", "value", "expectation"],
            rows,
            title=f"E16  engines agree sample-path-exactly ({n} packets, d={D})",
        ),
    )
    assert rows[0][1] < 1e-8
    assert rows[1][1] < 1e-6
    assert abs(rows[2][1] - rows[3][1]) / rows[2][1] < 0.1
