"""E12 — Props 2/3: the universal and oblivious lower bounds hold.

Regenerated table: the measured greedy delay vs the universal bound
(Prop 2, any scheme), the oblivious bound (Prop 3 — greedy is
oblivious), and the scheme-specific Prop 13 bound — ordered
``Prop2 <= Prop3 <= Prop13 <= measured``.
"""

from repro.analysis.tables import format_table
from repro.core.bounds import (
    greedy_delay_lower_bound,
    oblivious_delay_lower_bound,
    universal_delay_lower_bound,
    universal_delay_lower_bound_simplified,
)
from repro.core.greedy import GreedyHypercubeScheme
from repro.core.load import lam_for_load

from _common import SEED, emit

CASES = [(4, 0.5), (5, 0.7), (6, 0.9), (4, 0.95)]
P = 0.5


def run_point(d, rho, horizon, seed):
    lam = lam_for_load(rho, P)
    return GreedyHypercubeScheme(d=d, lam=lam, p=P).measure_delay(horizon, rng=seed)


def run_experiment():
    rows = []
    for i, (d, rho) in enumerate(CASES):
        lam = lam_for_load(rho, P)
        horizon = 2500.0 if rho >= 0.9 else 1200.0
        t = run_point(d, rho, horizon, SEED + i)
        rows.append(
            (
                d,
                rho,
                universal_delay_lower_bound_simplified(d, lam, P),
                universal_delay_lower_bound(d, lam, P),
                oblivious_delay_lower_bound(d, lam, P),
                greedy_delay_lower_bound(d, lam, P),
                t,
            )
        )
    return rows


def test_e12_lower_bounds(benchmark):
    benchmark.pedantic(lambda: run_point(5, 0.7, 300.0, SEED), rounds=3, iterations=1)
    rows = run_experiment()
    emit(
        "e12_lower_bounds",
        format_table(
            [
                "d",
                "rho",
                "Prop2 (displayed)",
                "Prop2 (max form)",
                "Prop3 oblivious",
                "Prop13 greedy",
                "measured T",
            ],
            rows,
            title="E12  lower-bound hierarchy: Prop2 <= Prop3 <= Prop13 <= measured T",
        ),
    )
    for _, _, p2s, p2, p3, p13, t in rows:
        assert p2s <= p2 + 1e-9
        assert p2 <= p3 + 1e-9
        assert p3 <= p13 + 1e-9
        assert p13 * 0.95 <= t
