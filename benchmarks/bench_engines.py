"""Engine-axis baseline: the replication-batched fast path vs the seed.

Emits ``benchmarks/results/BENCH_engines.json`` pinning the wall-clock
payoff of the engine-plugin tentpole for one 32-replication
hypercube-greedy measurement (jobs=1, one process, same machine):

* ``seed_fanout_s``   — the **seed** per-process fan-out: one
  replication per task, with the seed's ``serve_level`` (a Python loop
  over arcs, one little Lindley/PS call per arc) re-enacted verbatim.
  This is the pre-engines hot path this PR retires.
* ``sequential_s``    — the current per-replication fan-out
  (``measure(batch=False)``): same task structure, but every level is
  solved by the segmented Lindley recursion with **no** per-arc loop.
* ``batched_s``       — the batched engine path
  (``measure(batch=True)``): R replications stacked into one
  vectorised computation per level
  (:meth:`repro.engines.api.EnginePlugin.simulate_batch`).

All three produce **bit-identical** pooled measurements (asserted —
the golden-pinned contract), so the comparison is pure wall clock.
The operating point is deliberately arc-rich (d=13: 8192 nodes,
106496 arcs, short horizon): the regime of wide parameter sweeps over
large networks, where the seed's per-arc Python loop is the hot path
and the acceptance bar — ``speedup_vs_seed >= 3`` for the batched
path — has a wide margin.

Run with::

    python benchmarks/bench_engines.py            # full (the pinned JSON)
    python benchmarks/bench_engines.py --quick    # CI smoke sizes
"""

import json
import sys
import time

import numpy as np

import repro.sim.feedforward as _ff
from repro.rng import replication_seeds
from repro.runner import ScenarioSpec, measure
from repro.sim.lindley import fifo_departure_times
from repro.sim.servers import ps_departure_times

from _common import RESULTS_DIR

#: arc-rich sweep cell: 8192-node cube, every level touches thousands
#: of arcs with a handful of packets each
FULL_SPEC = dict(d=13, rho=0.7, horizon=4.0, replications=32)
#: CI smoke sizes (same shape, seconds instead of tens of seconds)
QUICK_SPEC = dict(d=10, rho=0.7, horizon=6.0, replications=16)

REPEATS = 3  # best-of timings


def _seed_serve_level(arcs, times, pids, discipline="fifo", service=1.0,
                      blocks=None):
    """The seed's ``serve_level`` (commit c5ecac6), frozen verbatim:
    after the (arc, time, pid) lexsort, a Python loop dispatches one
    Lindley / fair-share call **per busy arc**."""
    n = arcs.shape[0]
    dep = np.empty(n)
    if n == 0:
        return dep, np.zeros(0, dtype=np.int64)
    per_arc = isinstance(service, np.ndarray)
    order = np.lexsort((pids, times, arcs))
    a_s = arcs[order]
    t_s = times[order]
    starts = np.flatnonzero(np.r_[True, a_s[1:] != a_s[:-1]])
    bounds = np.r_[starts, n]
    dep_s = np.empty(n)
    for i in range(starts.shape[0]):
        lo, hi = bounds[i], bounds[i + 1]
        s = float(service[int(a_s[lo])]) if per_arc else float(service)
        if discipline == "fifo":
            dep_s[lo:hi] = fifo_departure_times(t_s[lo:hi], s)
        else:
            dep_s[lo:hi] = ps_departure_times(t_s[lo:hi], work=s)
    dep[order] = dep_s
    return dep, order


def _best_of(fn, repeats=REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_experiment(quick=False):
    params = QUICK_SPEC if quick else FULL_SPEC
    spec = ScenarioSpec(
        name="bench-engines", base_seed=0, seed_policy="spawn", **params
    )
    modern = _ff.serve_level
    _ff.serve_level = _seed_serve_level
    try:
        seed_s, seed_m = _best_of(lambda: measure(spec, jobs=1, batch=False))
    finally:
        _ff.serve_level = modern
    seq_s, seq_m = _best_of(lambda: measure(spec, jobs=1, batch=False))
    bat_s, bat_m = _best_of(lambda: measure(spec, jobs=1, batch=True))

    bit_identical = seed_m == seq_m == bat_m
    # the batched outputs equal the sequential golden values per
    # replication, not merely in the pooled mean
    seeds = replication_seeds(spec.base_seed, spec.replications,
                              spec.seed_policy)
    runner = spec.plugin.batch_runner(spec)
    from repro.sim.run_spec import run_spec

    per_rep_identical = runner(seeds) == [run_spec(spec, s) for s in seeds]

    return {
        "mode": "quick" if quick else "full",
        "spec": {
            "network": spec.network,
            "scheme": spec.scheme,
            "engine": spec.engine,
            "resolved_engine": "feedforward",
            "d": spec.d,
            "rho": spec.rho,
            "horizon": spec.horizon,
            "replications": spec.replications,
            "seed_policy": spec.seed_policy,
            "jobs": 1,
        },
        "num_packets": bat_m.num_packets,
        "mean_delay": bat_m.mean_delay,
        "seed_fanout_s": round(seed_s, 4),
        "sequential_s": round(seq_s, 4),
        "batched_s": round(bat_s, 4),
        "speedup_vs_seed": round(seed_s / bat_s, 2),
        "speedup_sequential_vs_seed": round(seed_s / seq_s, 2),
        "batched_vs_sequential": round(seq_s / bat_s, 2),
        "bit_identical": bool(bit_identical),
        "per_replication_bit_identical": bool(per_rep_identical),
    }


def emit_json(results):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_engines.json"
    payload = {
        "description": "replication-batched engine path vs the seed "
        "per-process fan-out (32-replication hypercube-greedy, jobs=1; "
        "seed serve_level re-enacted verbatim for the baseline)",
        **results,
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def test_engines_benchmark():
    quick = True  # keep the pytest entry point CI-sized
    results = run_experiment(quick=quick)
    path = emit_json(results)
    assert results["bit_identical"]
    assert results["per_replication_bit_identical"]
    assert results["speedup_vs_seed"] > 1.0
    print(f"\n[written to {path}]")


if __name__ == "__main__":
    quick = "--quick" in sys.argv
    results = run_experiment(quick=quick)
    path = emit_json(results)
    print(json.dumps(results, indent=1))
    print(f"written {path}")
    if not quick and results["speedup_vs_seed"] < 3.0:
        sys.exit("FAIL: batched path is not >= 3x the seed fan-out")
