"""Engine-axis baseline: the three execution paths, timed and pinned.

Emits ``BENCH_engines.json`` at the **repo root** pinning the
wall-clock and memory profile of the replication fan-out for one
32-replication hypercube-greedy measurement:

* ``seed_fanout_s``   — the original per-process fan-out: one
  replication per task, with the seed's ``serve_level`` (a Python loop
  over arcs, one little Lindley/PS call per arc) re-enacted verbatim.
* ``sequential_s``    — the per-replication fan-out
  (``measure(batch=False)``): same task structure, but every level is
  solved by the segmented Lindley recursion with **no** per-arc loop.
* ``batched_s``       — the batched engine path (``measure(batch=True)``,
  jobs=1, same process): replications stacked into cache-resident
  sub-batches, one workload-generation pass, one vectorised level loop
  per sub-batch.  The **headline** ratio is
  ``batched_vs_sequential = sequential_s / batched_s``.
* ``batched_jobs4_s`` — the batched path composed with ``jobs=4``: the
  shared-workload route (workloads generated once in the parent,
  published to workers via a memory-mapped file, workers pinned to
  cores with ``pin_workers``).  On a host with fewer than 4 cores the
  column records ``"skipped_single_core"`` instead of timing pure pool
  overhead — the ratio is only honest when ``host_cpu_cores >= 4``.
* ``chunked_s`` + ``memory`` — the bounded-memory chunked-horizon mode
  (``chunk_packets``): wall-clock on the pinned cell, plus tracemalloc
  peaks of the one-shot vs chunked kernel on a long-horizon cell where
  the horizon (not the topology) dominates the one-shot footprint.
* ``chunked_ps`` — the PS chunk carry on the same cell (one
  replication): max abs deviation of the chunked fair-share
  construction from the one-shot PS sweep, pinned ≤ 1e-9.
* ``event_s`` / ``event_batched_s`` — the replication-batched event
  calendar on a **sparse cyclic-scheme cell** (``random_order``: the
  server graph is cyclic, so only the event engine can run it):
  sequential per-replication calendars vs all replications stacked
  into one arc-offset calendar.  The merged calendar is R times
  denser, which is where the windowed FIFO core's per-window cost
  amortises — ``event_batched_vs_event = event_s / event_batched_s``
  is pinned ≥ 2.0, with per-replication results bit-identical by
  construction (asserted).

Every path produces **bit-identical** measurements (asserted — the
golden-pinned contract), so the comparison is pure wall clock.  The
operating point is deliberately arc-rich (d=13: 8192 nodes, 106496
arcs, short horizon): the regime of wide parameter sweeps over large
networks.

Run with::

    python benchmarks/bench_engines.py            # full (the pinned JSON)
    python benchmarks/bench_engines.py --quick    # CI smoke sizes
"""

import json
import os
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

import repro.sim.feedforward as _ff
from repro.rng import as_generator, replication_seeds
from repro.runner import ScenarioSpec, measure
from repro.sim.lindley import fifo_departure_times
from repro.sim.servers import ps_departure_times

ROOT = Path(__file__).resolve().parent.parent

#: arc-rich sweep cell: 8192-node cube, every level touches thousands
#: of arcs with a handful of packets each
FULL_SPEC = dict(d=13, rho=0.7, horizon=4.0, replications=32)
#: CI smoke sizes (same shape, seconds instead of minutes)
QUICK_SPEC = dict(d=10, rho=0.7, horizon=6.0, replications=16)

#: bounded-memory demonstration cell: modest network, long horizon —
#: the regime chunk_packets exists for (one-shot footprint scales with
#: the horizon, chunked with the chunk + the topology)
FULL_MEM = dict(d=10, rho=0.7, horizon=200.0)
QUICK_MEM = dict(d=8, rho=0.7, horizon=120.0)
MEM_CHUNK = 4096

#: chunk used for the wall-clock column on the pinned cell
TIMING_CHUNK = 32768

#: sparse cyclic-scheme cell for the batched event calendar: low load
#: and a long horizon make the per-replication calendar sparse (few
#: events per service window), the regime where merging R replications
#: into one denser calendar pays the most
FULL_EVENT = dict(d=4, rho=0.3, horizon=400.0, replications=32)
QUICK_EVENT = dict(d=4, rho=0.3, horizon=120.0, replications=16)

REPEATS = 5  # best-of timings


def _seed_serve_level(arcs, times, pids, discipline="fifo", service=1.0,
                      blocks=None):
    """The seed's ``serve_level`` (commit c5ecac6), frozen verbatim:
    after the (arc, time, pid) lexsort, a Python loop dispatches one
    Lindley / fair-share call **per busy arc**."""
    n = arcs.shape[0]
    dep = np.empty(n)
    if n == 0:
        return dep, np.zeros(0, dtype=np.int64)
    per_arc = isinstance(service, np.ndarray)
    order = np.lexsort((pids, times, arcs))
    a_s = arcs[order]
    t_s = times[order]
    starts = np.flatnonzero(np.r_[True, a_s[1:] != a_s[:-1]])
    bounds = np.r_[starts, n]
    dep_s = np.empty(n)
    for i in range(starts.shape[0]):
        lo, hi = bounds[i], bounds[i + 1]
        s = float(service[int(a_s[lo])]) if per_arc else float(service)
        if discipline == "fifo":
            dep_s[lo:hi] = fifo_departure_times(t_s[lo:hi], s)
        else:
            dep_s[lo:hi] = ps_departure_times(t_s[lo:hi], work=s)
    dep[order] = dep_s
    return dep, order


def _best_of(fn, repeats=REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _memory_peaks(params):
    """tracemalloc peaks of the one-shot vs chunked kernel on one
    long-horizon replication (the workload itself is excluded — both
    kernels read the same pre-generated sample)."""
    spec = ScenarioSpec(
        name="bench-engines-mem", base_seed=0, seed_policy="spawn",
        replications=1, **params
    )
    net = spec.network_plugin
    topology = net.build_topology(spec)
    seeds = replication_seeds(spec.base_seed, 1, spec.seed_policy)
    sample = net.build_workload(spec).generate(
        spec.horizon, as_generator(seeds[0])
    )
    tracemalloc.start()
    one_shot = net.simulate_greedy(topology, spec, sample)
    _, peak_one = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    tracemalloc.start()
    chunked = net.simulate_greedy_chunked(topology, spec, sample, MEM_CHUNK)
    _, peak_chunk = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "cell": {**params, "num_packets": sample.num_packets},
        "chunk_packets": MEM_CHUNK,
        "oneshot_peak_mb": round(peak_one / 2**20, 2),
        "chunked_peak_mb": round(peak_chunk / 2**20, 2),
        "oneshot_over_chunked": round(peak_one / max(peak_chunk, 1), 2),
        "bit_identical": bool(np.array_equal(one_shot, chunked)),
    }


def _chunked_ps_agreement(params, chunk):
    """Max abs deviation of the chunked PS carry from the one-shot PS
    sweep on one replication of the timing cell (contract: <= 1e-9)."""
    spec = ScenarioSpec(
        name="bench-engines-ps", base_seed=0, seed_policy="spawn",
        replications=1, discipline="ps",
        **{k: v for k, v in params.items() if k != "replications"},
    )
    net = spec.network_plugin
    topology = net.build_topology(spec)
    seeds = replication_seeds(spec.base_seed, 1, spec.seed_policy)
    sample = net.build_workload(spec).generate(
        spec.horizon, as_generator(seeds[0])
    )
    one_shot = net.simulate_greedy(topology, spec, sample)
    chunked = net.simulate_greedy_chunked(topology, spec, sample, chunk)
    err = (
        float(np.max(np.abs(one_shot - chunked)))
        if sample.num_packets
        else 0.0
    )
    return {
        "cell": {k: v for k, v in params.items() if k != "replications"},
        "chunk_packets": chunk,
        "max_abs_diff": err,
        "within_tolerance": bool(err <= 1e-9),
    }


def run_experiment(quick=False):
    params = QUICK_SPEC if quick else FULL_SPEC
    spec = ScenarioSpec(
        name="bench-engines", base_seed=0, seed_policy="spawn", **params
    )
    modern = _ff.serve_level
    _ff.serve_level = _seed_serve_level
    try:
        seed_s, seed_m = _best_of(lambda: measure(spec, jobs=1, batch=False))
    finally:
        _ff.serve_level = modern
    seq_s, seq_m = _best_of(lambda: measure(spec, jobs=1, batch=False))
    bat_s, bat_m = _best_of(lambda: measure(spec, jobs=1, batch=True))
    # timing the pool route on < 4 cores would measure pure pool
    # overhead, not parallelism — skip it honestly instead
    cores = os.cpu_count() or 1
    jobs4_skipped = cores < 4
    if jobs4_skipped:
        par_s, par_m = None, None
    else:
        par_s, par_m = _best_of(
            lambda: measure(spec, jobs=4, batch=True, pin_workers=True)
        )
    chunk_spec = spec.replace(extra={"chunk_packets": TIMING_CHUNK})
    chk_s, chk_m = _best_of(lambda: measure(chunk_spec, jobs=1, batch=True))

    event_params = QUICK_EVENT if quick else FULL_EVENT
    event_spec = ScenarioSpec(
        name="bench-engines-event", scheme="random_order", base_seed=0,
        seed_policy="spawn", **event_params
    )
    ev_s, ev_m = _best_of(lambda: measure(event_spec, jobs=1, batch=False))
    evb_s, evb_m = _best_of(lambda: measure(event_spec, jobs=1, batch=True))

    bit_identical = seed_m == seq_m == bat_m and (
        par_m is None or par_m == bat_m
    )
    chunked_identical = (
        chk_m.replication_delays == seq_m.replication_delays
    )
    # the batched outputs equal the sequential golden values per
    # replication, not merely in the pooled mean
    seeds = replication_seeds(spec.base_seed, spec.replications,
                              spec.seed_policy)
    runner = spec.plugin.batch_runner(spec)
    from repro.sim.run_spec import run_spec

    per_rep_identical = runner(seeds) == [run_spec(spec, s) for s in seeds]

    return {
        "mode": "quick" if quick else "full",
        "host_cpu_cores": cores,
        "spec": {
            "network": spec.network,
            "scheme": spec.scheme,
            "engine": spec.engine,
            "resolved_engine": "feedforward",
            "d": spec.d,
            "rho": spec.rho,
            "horizon": spec.horizon,
            "replications": spec.replications,
            "seed_policy": spec.seed_policy,
        },
        "num_packets": bat_m.num_packets,
        "mean_delay": bat_m.mean_delay,
        "seed_fanout_s": round(seed_s, 4),
        "sequential_s": round(seq_s, 4),
        "batched_s": round(bat_s, 4),
        "batched_jobs4_s": (
            "skipped_single_core" if jobs4_skipped else round(par_s, 4)
        ),
        "batched_jobs4_pin_workers": not jobs4_skipped,
        "chunked_s": round(chk_s, 4),
        "chunked_chunk_packets": TIMING_CHUNK,
        "speedup_vs_seed": round(seed_s / bat_s, 2),
        "speedup_sequential_vs_seed": round(seed_s / seq_s, 2),
        "batched_vs_sequential": round(seq_s / bat_s, 2),
        "batched_jobs4_vs_batched": (
            "skipped_single_core" if jobs4_skipped else round(bat_s / par_s, 2)
        ),
        "chunked_vs_sequential": round(seq_s / chk_s, 2),
        "bit_identical": bool(bit_identical),
        "chunked_bit_identical": bool(chunked_identical),
        "per_replication_bit_identical": bool(per_rep_identical),
        "event_spec": {
            "network": event_spec.network,
            "scheme": event_spec.scheme,
            "resolved_engine": "event",
            "d": event_spec.d,
            "rho": event_spec.rho,
            "horizon": event_spec.horizon,
            "replications": event_spec.replications,
            "seed_policy": event_spec.seed_policy,
        },
        "event_num_packets": evb_m.num_packets,
        "event_s": round(ev_s, 4),
        "event_batched_s": round(evb_s, 4),
        "event_batched_vs_event": round(ev_s / evb_s, 2),
        "event_bit_identical": bool(ev_m == evb_m),
        "memory": _memory_peaks(QUICK_MEM if quick else FULL_MEM),
        "chunked_ps": _chunked_ps_agreement(params, TIMING_CHUNK),
    }


def emit_json(results):
    path = ROOT / "BENCH_engines.json"
    payload = {
        "description": "the three replication fan-out routes on one "
        "hypercube-greedy cell: sequential per-replication tasks, the "
        "cache-resident sub-batched engine path (jobs=1, same process "
        "-- the headline batched_vs_sequential ratio), and the "
        "shared-workload parallel composition (jobs=4); plus the "
        "bounded-memory chunked-horizon mode and the seed's per-arc "
        "serve_level re-enacted verbatim as the historical baseline",
        **results,
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def test_engines_benchmark():
    quick = True  # keep the pytest entry point CI-sized
    results = run_experiment(quick=quick)
    path = emit_json(results)
    assert results["bit_identical"]
    assert results["chunked_bit_identical"]
    assert results["per_replication_bit_identical"]
    assert results["memory"]["bit_identical"]
    assert results["chunked_ps"]["within_tolerance"]
    assert results["speedup_vs_seed"] > 1.0
    assert results["event_bit_identical"]
    assert results["event_batched_vs_event"] > 1.0
    print(f"\n[written to {path}]")


if __name__ == "__main__":
    quick = "--quick" in sys.argv
    results = run_experiment(quick=quick)
    path = emit_json(results)
    print(json.dumps(results, indent=1))
    print(f"written {path}")
    if not (
        results["bit_identical"]
        and results["chunked_bit_identical"]
        and results["per_replication_bit_identical"]
        and results["event_bit_identical"]
        and results["memory"]["bit_identical"]
    ):
        sys.exit("FAIL: execution paths are not bit-identical")
    if not results["chunked_ps"]["within_tolerance"]:
        sys.exit("FAIL: chunked PS deviates > 1e-9 from the one-shot sweep")
    if not quick and results["speedup_vs_seed"] < 3.0:
        sys.exit("FAIL: batched path is not >= 3x the seed fan-out")
    if not quick and results["batched_vs_sequential"] < 1.0:
        sys.exit("FAIL: batched path is slower than sequential fan-out")
    if not quick and results["chunked_vs_sequential"] < 0.9:
        sys.exit("FAIL: chunked-horizon overhead regressed below 0.9x")
    if not quick and results["event_batched_vs_event"] < 2.0:
        sys.exit("FAIL: batched event calendar is not >= 2x sequential")
