"""Shared plumbing for the benchmark harness.

Every ``bench_eNN_*.py`` regenerates one experiment of DESIGN.md §4:
it prints the paper-shaped table, writes it to
``benchmarks/results/eNN_*.txt`` (quoted by EXPERIMENTS.md), and
benchmarks its simulation kernel with pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only      # timings only
    pytest benchmarks/ -s                    # tables + assertions
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: global seed base so every experiment is reproducible end to end
SEED = 20260611


def emit(name: str, text: str) -> None:
    """Print a table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
