"""Shared plumbing for the benchmark harness.

Every ``bench_eNN_*.py`` regenerates one experiment of DESIGN.md §4:
it prints the paper-shaped table, writes it to
``benchmarks/results/eNN_*.txt`` (quoted by EXPERIMENTS.md), and
benchmarks its simulation kernel with pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only      # timings only
    pytest benchmarks/ -s                    # tables + assertions
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: global seed base so every experiment is reproducible end to end
SEED = 20260611

#: parallel worker processes for scenario-runner fan-out; the numbers
#: are bit-identical at any value (seeds are derived centrally), so
#: this only trades wall-clock for cores
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))


def emit(name: str, text: str) -> None:
    """Print a table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
