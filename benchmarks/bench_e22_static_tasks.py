"""E22 — §1.2 context: static permutation routing.

The paper's survey contrasts static algorithms ([VaB81], [Val82]) with
its dynamic problem.  Regenerated table: one-shot makespans of

* greedy dimension-order routing on a random permutation — O(d);
* greedy on bit reversal — Theta(2^{d/2}) (Borodin–Hopcroft adversary);
* Valiant–Brebner two-phase on bit reversal — back to O(d) w.h.p.

This is the static ancestor of the dynamic E18 result.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.schemes.static_tasks import (
    route_permutation_greedy,
    route_permutation_valiant,
)
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import bit_reversal_permutation

from _common import SEED, emit

DIMS = [4, 6, 8]


def run_case(d, seed):
    cube = Hypercube(d)
    gen = np.random.default_rng(seed)
    random_perm = gen.permutation(cube.num_nodes)
    bitrev = bit_reversal_permutation(d)
    return {
        "greedy / random perm": route_permutation_greedy(cube, random_perm),
        "greedy / bit reversal": route_permutation_greedy(cube, bitrev),
        "valiant / bit reversal": route_permutation_valiant(cube, bitrev, rng=seed),
    }


def run_experiment():
    rows = []
    for i, d in enumerate(DIMS):
        results = run_case(d, SEED + i)
        for name, res in results.items():
            rows.append((d, name, res.completion_time, res.mean_delay))
    return rows


def test_e22_static_tasks(benchmark):
    benchmark.pedantic(lambda: run_case(6, SEED), rounds=3, iterations=1)
    rows = run_experiment()
    emit(
        "e22_static_tasks",
        format_table(
            ["d", "scheme / permutation", "makespan", "mean delay"],
            rows,
            title="E22  static one-shot permutations: greedy vs Valiant-Brebner",
        ),
    )
    for d in DIMS:
        case = {name: make for dd, name, make, _ in rows if dd == d}
        assert case["greedy / random perm"] <= 4 * d
        assert case["valiant / bit reversal"] <= 4 * d
        if d >= 6:
            assert case["greedy / bit reversal"] >= 2 ** (d // 2 - 1)
    # adversarial blow-up grows with d while valiant stays linear
    blowups = [r[2] for r in rows if r[1] == "greedy / bit reversal"]
    assert blowups == sorted(blowups)
