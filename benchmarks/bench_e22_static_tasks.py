"""E22 — §1.2 context: static permutation routing.

The paper's survey contrasts static algorithms ([VaB81], [Val82]) with
its dynamic problem.  Regenerated table: one-shot makespans of

* greedy dimension-order routing on a random permutation — O(d);
* greedy on bit reversal — Theta(2^{d/2}) (Borodin–Hopcroft adversary);
* Valiant–Brebner two-phase on bit reversal — back to O(d) w.h.p.

This is the static ancestor of the dynamic E18 result.  Thin wrapper
over the registered ``static-greedy-bitrev`` / ``static-valiant-bitrev``
scenarios; the makespan rides along as a pooled side metric.
"""

from repro.analysis.tables import format_table
from repro.runner import get_scenario, measure, measure_many

from _common import BENCH_JOBS, SEED, emit

DIMS = [4, 6, 8]

GREEDY = get_scenario("static-greedy-bitrev").replace(seed_policy="sequential")
VALIANT = get_scenario("static-valiant-bitrev").replace(
    replications=1, seed_policy="sequential"
)

CASES = [
    ("greedy / random perm", GREEDY, {"perm": "random"}),
    ("greedy / bit reversal", GREEDY, {"perm": "bitrev"}),
    ("valiant / bit reversal", VALIANT, {"perm": "bitrev"}),
]


def grid():
    return [
        base.replace(
            name=f"e22-{name.replace(' ', '')}-d{d}",
            d=d,
            base_seed=SEED + i,
            extra=extra,
        )
        for i, d in enumerate(DIMS)
        for name, base, extra in CASES
    ]


def run_experiment():
    ms = measure_many(grid(), jobs=BENCH_JOBS)
    rows = []
    for k, d in enumerate(DIMS):
        for j, (name, _, _) in enumerate(CASES):
            m = ms[k * len(CASES) + j]
            rows.append((d, name, m.metric("makespan"), m.mean_delay))
    return rows


def test_e22_static_tasks(benchmark):
    benchmark.pedantic(
        lambda: measure(
            GREEDY.replace(name="e22-timing", d=6, extra={"perm": "random"},
                           base_seed=SEED)
        ),
        rounds=3,
        iterations=1,
    )
    rows = run_experiment()
    emit(
        "e22_static_tasks",
        format_table(
            ["d", "scheme / permutation", "makespan", "mean delay"],
            rows,
            title="E22  static one-shot permutations: greedy vs Valiant-Brebner",
        ),
    )
    for d in DIMS:
        case = {name: make for dd, name, make, _ in rows if dd == d}
        assert case["greedy / random perm"] <= 4 * d
        assert case["valiant / bit reversal"] <= 4 * d
        if d >= 6:
            assert case["greedy / bit reversal"] >= 2 ** (d // 2 - 1)
    # adversarial blow-up grows with d while valiant stays linear
    blowups = [r[2] for r in rows if r[1] == "greedy / bit reversal"]
    assert blowups == sorted(blowups)
