"""E15 — p-dependence: localized vs antipodal traffic.

Eq. (1)'s parameter p interpolates from fully local (p -> 0) through
uniform (p = 1/2) to antipodal (p = 1) traffic.  At fixed load factor
rho = lam p the paper's bounds scale as dp (paths lengthen with p even
as per-arc load stays constant).  Regenerated table: measured T vs p at
fixed rho, with the bound bracket — plus the p = 1 endpoint where the
paper gives the exact value d + rho/(2(1-rho)) (tight lower bound).

Thin wrapper over the registered ``hypercube-greedy-mid`` /
``hypercube-greedy-antipodal`` scenarios; the whole sweep runs as one
parallel batch.
"""

from repro.analysis.tables import format_table
from repro.core.bounds import antipodal_exact_delay
from repro.runner import get_scenario, measure, measure_many

from _common import BENCH_JOBS, SEED, emit

D, RHO = 6, 0.7
PS = [0.1, 0.25, 0.5, 0.75, 0.9]
HORIZON = 1500.0

BASE = get_scenario("hypercube-greedy-mid").replace(
    d=D, rho=RHO, horizon=HORIZON, replications=1, seed_policy="sequential"
)
ENDPOINT = get_scenario("hypercube-greedy-antipodal").replace(
    d=D, rho=RHO, horizon=2000.0, replications=1, seed_policy="sequential",
    base_seed=SEED + 99, name="e15b-antipodal",
)


def grid():
    return [
        BASE.replace(name=f"e15-p{p}", p=p, base_seed=SEED + i)
        for i, p in enumerate(PS)
    ]


def run_experiment():
    ms = measure_many(grid() + [ENDPOINT], jobs=BENCH_JOBS)
    rows = [
        (m.p, m.lower_bound, m.mean_delay, m.upper_bound, m.mean_delay / m.p)
        for m in ms[:-1]
    ]
    exact = antipodal_exact_delay(D, ENDPOINT.resolved_lam)
    return rows, (1.0, exact, ms[-1].mean_delay)


def test_e15_p_sweep(benchmark):
    benchmark.pedantic(
        lambda: measure(
            BASE.replace(name="e15-timing", horizon=300.0, base_seed=SEED)
        ),
        rounds=3,
        iterations=1,
    )
    rows, p1 = run_experiment()
    emit(
        "e15_p_sweep",
        format_table(
            ["p", "Prop13 lower", "measured T", "Prop12 upper", "T/p"],
            rows,
            title=f"E15  p-sweep at fixed rho={RHO} (d={D}): delay scales like dp",
        )
        + "\n\n"
        + format_table(
            ["p", "exact theory d + rho/(2(1-rho))", "measured T"],
            [p1],
            title="E15b  antipodal endpoint p=1: paths disjoint, formula exact",
        ),
    )
    for _, lo, t, hi, _ in rows:
        assert lo * 0.95 <= t <= hi * 1.05
    # delay grows with p at fixed rho
    ts = [r[2] for r in rows]
    assert ts == sorted(ts)
    _, exact, t1 = p1
    assert abs(t1 - exact) / exact < 0.05
