"""E15 — p-dependence: localized vs antipodal traffic.

Eq. (1)'s parameter p interpolates from fully local (p -> 0) through
uniform (p = 1/2) to antipodal (p = 1) traffic.  At fixed load factor
rho = lam p the paper's bounds scale as dp (paths lengthen with p even
as per-arc load stays constant).  Regenerated table: measured T vs p at
fixed rho, with the bound bracket — plus the p = 1 endpoint where the
paper gives the exact value d + rho/(2(1-rho)) (tight lower bound).
"""

from repro.analysis.experiments import measure_hypercube_delay
from repro.analysis.tables import format_table
from repro.core.bounds import antipodal_exact_delay
from repro.core.greedy import GreedyHypercubeScheme

from _common import SEED, emit

D, RHO = 6, 0.7
PS = [0.1, 0.25, 0.5, 0.75, 0.9]
HORIZON = 1500.0


def run_point(p, horizon, seed):
    return measure_hypercube_delay(D, RHO, p=p, horizon=horizon, rng=seed)


def run_experiment():
    rows = []
    for i, p in enumerate(PS):
        m = run_point(p, HORIZON, SEED + i)
        rows.append((p, m.lower_bound, m.mean_delay, m.upper_bound, m.mean_delay / p))
    # exact p = 1 endpoint
    lam = RHO
    scheme = GreedyHypercubeScheme(d=D, lam=lam, p=1.0)
    t1 = scheme.measure_delay(2000.0, rng=SEED + 99)
    exact = antipodal_exact_delay(D, lam)
    return rows, (1.0, exact, t1)


def test_e15_p_sweep(benchmark):
    benchmark.pedantic(lambda: run_point(0.5, 300.0, SEED), rounds=3, iterations=1)
    rows, p1 = run_experiment()
    emit(
        "e15_p_sweep",
        format_table(
            ["p", "Prop13 lower", "measured T", "Prop12 upper", "T/p"],
            rows,
            title=f"E15  p-sweep at fixed rho={RHO} (d={D}): delay scales like dp",
        )
        + "\n\n"
        + format_table(
            ["p", "exact theory d + rho/(2(1-rho))", "measured T"],
            [p1],
            title="E15b  antipodal endpoint p=1: paths disjoint, formula exact",
        ),
    )
    for _, lo, t, hi, _ in rows:
        assert lo * 0.95 <= t <= hi * 1.05
    # delay grows with p at fixed rho
    ts = [r[2] for r in rows]
    assert ts == sorted(ts)
    _, exact, t1 = p1
    assert abs(t1 - exact) / exact < 0.05
