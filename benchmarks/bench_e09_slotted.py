"""E9 — §3.4 slotted time: ``T~ <= dp/(1-rho) + tau``.

Regenerated table: slotted mean delay vs the continuous-time system and
the slotted bound, for tau in {1/4, 1/2, 1}.  The shape: the slotted
delay exceeds the continuous one by less than a slot, and both sit
below their respective bounds.
"""

from repro.analysis.tables import format_table
from repro.core.greedy import GreedyHypercubeScheme
from repro.sim.slotted import SlottedGreedyHypercube

from _common import SEED, emit

D, LAM, P = 5, 1.4, 0.5  # rho = 0.7
TAUS = [0.25, 0.5, 1.0]
HORIZON = 1500.0


def run_slotted(tau, horizon, seed):
    return SlottedGreedyHypercube(d=D, lam=LAM, p=P, tau=tau).measure_delay(
        horizon, rng=seed
    )


def run_experiment():
    cont = GreedyHypercubeScheme(d=D, lam=LAM, p=P)
    t_cont = cont.measure_delay(HORIZON, rng=SEED)
    rows = [("continuous", t_cont, cont.delay_upper_bound(), float("nan"))]
    for i, tau in enumerate(TAUS):
        s = SlottedGreedyHypercube(d=D, lam=LAM, p=P, tau=tau)
        t = run_slotted(tau, HORIZON, SEED + 1 + i)
        rows.append((f"slotted tau={tau}", t, s.delay_upper_bound(), t - t_cont))
    return rows


def test_e09_slotted(benchmark):
    benchmark.pedantic(lambda: run_slotted(0.5, 300.0, SEED), rounds=3, iterations=1)
    rows = run_experiment()
    emit(
        "e09_slotted",
        format_table(
            ["system", "measured T", "upper bound", "excess over continuous"],
            rows,
            title=f"E9  slotted time (d={D}, rho=0.7): T~ <= dp/(1-rho) + tau",
        ),
    )
    for name, t, bound, excess in rows:
        assert t <= bound * 1.05
        if name.startswith("slotted"):
            tau = float(name.split("=")[1])
            assert excess <= tau + 0.3  # within a slot (+noise)
