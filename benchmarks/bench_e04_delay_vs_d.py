"""E4 — the O(d) delay claim: T/d is flat in d at fixed rho.

Prop 12 guarantees ``T <= dp/(1-rho)``: at fixed ``rho`` the delay per
dimension is bounded by a constant.  Regenerated series: T and T/d for
d = 3..9 at rho in {0.5, 0.8}.  The shape: T grows linearly, T/d is a
horizontal line between ``p`` and ``p/(1-rho)``.

Thin wrapper over the registered ``hypercube-greedy-mid`` scenario;
the d-grid fans out through the parallel experiment engine.
"""

from repro.analysis.tables import format_table
from repro.runner import get_scenario, measure, measure_many

from _common import BENCH_JOBS, SEED, emit

DIMS = [3, 4, 5, 6, 7, 8, 9]
RHOS = [0.5, 0.8]

BASE = get_scenario("hypercube-greedy-mid").replace(
    replications=1, seed_policy="sequential"
)


def grid(horizon=900.0):
    return [
        BASE.replace(
            name=f"e04-d{d}-rho{rho}",
            d=d,
            rho=rho,
            horizon=horizon,
            base_seed=SEED + d + int(rho * 1000),
        )
        for rho in RHOS
        for d in DIMS
    ]


def run_experiment(horizon=900.0):
    return [
        (m.rho, m.d, m.mean_delay, m.normalised_delay)
        for m in measure_many(grid(horizon), jobs=BENCH_JOBS)
    ]


def test_e04_delay_vs_d(benchmark):
    benchmark.pedantic(
        lambda: measure(
            BASE.replace(name="e04-timing", d=9, rho=0.8, horizon=300.0,
                         base_seed=SEED)
        ),
        rounds=3,
        iterations=1,
    )
    rows = run_experiment()
    emit(
        "e04_delay_vs_d",
        format_table(
            ["rho", "d", "measured T", "T / d"],
            rows,
            title="E4  O(d) delay: T/d flat in d at fixed rho (p = 1/2)",
        ),
    )
    for rho in RHOS:
        norm = [r[3] for r in rows if r[0] == rho]
        # flatness: spread of T/d across d stays within 15%
        assert max(norm) / min(norm) < 1.15
        # and inside the theoretical band [p, p/(1-rho)]
        for v in norm:
            assert 0.5 * 0.97 <= v <= 0.5 / (1 - rho) * 1.03
