"""E4 — the O(d) delay claim: T/d is flat in d at fixed rho.

Prop 12 guarantees ``T <= dp/(1-rho)``: at fixed ``rho`` the delay per
dimension is bounded by a constant.  Regenerated series: T and T/d for
d = 3..9 at rho in {0.5, 0.8}.  The shape: T grows linearly, T/d is a
horizontal line between ``p`` and ``p/(1-rho)``.
"""

from repro.analysis.experiments import measure_hypercube_delay
from repro.analysis.tables import format_table

from _common import SEED, emit

DIMS = [3, 4, 5, 6, 7, 8, 9]
RHOS = [0.5, 0.8]


def run_experiment(horizon=900.0):
    rows = []
    for rho in RHOS:
        for d in DIMS:
            m = measure_hypercube_delay(
                d, rho, p=0.5, horizon=horizon, rng=SEED + d + int(rho * 1000)
            )
            rows.append((rho, d, m.mean_delay, m.normalised_delay))
    return rows


def test_e04_delay_vs_d(benchmark):
    benchmark.pedantic(
        lambda: measure_hypercube_delay(9, 0.8, horizon=300.0, rng=SEED),
        rounds=3,
        iterations=1,
    )
    rows = run_experiment()
    emit(
        "e04_delay_vs_d",
        format_table(
            ["rho", "d", "measured T", "T / d"],
            rows,
            title="E4  O(d) delay: T/d flat in d at fixed rho (p = 1/2)",
        ),
    )
    for rho in RHOS:
        norm = [r[3] for r in rows if r[0] == rho]
        # flatness: spread of T/d across d stays within 15%
        assert max(norm) / min(norm) < 1.15
        # and inside the theoretical band [p, p/(1-rho)]
        for v in norm:
            assert 0.5 * 0.97 <= v <= 0.5 / (1 - rho) * 1.03
