"""E21 — probing the §3.3 open conjecture: per-dimension waiting times.

The paper conjectures its upper bound ``dp/(1-rho)`` is tight (up to a
d-independent factor) for p in (0,1) because packets keep meeting
*fresh* contention at every dimension.  The measurable footprint: the
mean wait at level j should stay comparable to the level-0 wait (an
exact M/D/1: ``rho/(2(1-rho))``, eq. 16) rather than decay to zero as
the flows smooth out.

Regenerated table: mean wait per dimension for d = 8 at rho in
{0.5, 0.8}, next to the M/D/1 level-0 value.
"""

from repro.analysis.hopstats import per_level_hop_stats
from repro.analysis.tables import format_table
from repro.core.greedy import GreedyHypercubeScheme
from repro.core.load import lam_for_load
from repro.queueing.md1 import md1_wait

from _common import SEED, emit

D, P = 8, 0.5
RHOS = [0.5, 0.8]
HORIZON = 800.0


def run_one(rho, horizon, seed):
    scheme = GreedyHypercubeScheme(d=D, lam=lam_for_load(rho, P), p=P)
    res = scheme.run(horizon, rng=seed, record_arc_log=True)
    return per_level_hop_stats(
        res.arc_log,
        arcs_per_level=scheme.cube.num_nodes,
        num_levels=D,
        t0=horizon * 0.25,
        t1=horizon * 0.9,
    )


def run_experiment():
    rows = []
    for i, rho in enumerate(RHOS):
        stats = run_one(rho, HORIZON, SEED + i)
        md1 = md1_wait(rho)
        for s in stats:
            rows.append((rho, s.level, s.num_hops, s.mean_wait, md1))
    return rows


def test_e21_per_level_waits(benchmark):
    benchmark.pedantic(lambda: run_one(0.8, 200.0, SEED), rounds=3, iterations=1)
    rows = run_experiment()
    emit(
        "e21_per_level_waits",
        format_table(
            ["rho", "dimension", "hops", "mean wait", "M/D/1 wait (level 0 exact)"],
            rows,
            title=f"E21  per-dimension waits (d={D}, p={P}) — the §3.3 conjecture's "
            "footprint",
        ),
    )
    for rho in RHOS:
        level_rows = [r for r in rows if r[0] == rho]
        md1 = level_rows[0][4]
        # level-0 wait is the exact M/D/1 value
        assert abs(level_rows[0][3] - md1) / md1 < 0.1
        # waits at later dimensions stay the same order (do not vanish):
        # the contention is "fresh" at every level, as conjectured
        for _, lvl, _, wait, _ in level_rows[1:]:
            assert wait > 0.4 * md1, (rho, lvl, wait)
            assert wait < 2.5 * md1, (rho, lvl, wait)