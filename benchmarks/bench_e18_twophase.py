"""E18 — §5 extension: two-phase mixing under adversarial traffic.

The paper's concluding remark suggests Valiant-style mixing for general
destination distributions, trading peak throughput for immunity to
traffic skew.  Regenerated table on bit-reversal permutation traffic:

* direct greedy: peak arc load ``lam 2^{d/2-1}`` — saturated at
  lam = 0.4 (d = 6), measured delays exploding with the horizon;
* two-phase: every arc's flow stays ~lam — stable, with delay near the
  uncontended 2x path length.
"""

from repro.analysis.tables import format_table
from repro.schemes.twophase import TwoPhaseScheme, direct_greedy_arc_loads
from repro.sim.feedforward import simulate_hypercube_greedy
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import PermutationTraffic, bit_reversal_permutation
from repro.traffic.workload import HypercubeWorkload

from _common import SEED, emit

D, LAM = 6, 0.4


def run_direct(horizon, seed):
    cube = Hypercube(D)
    law = PermutationTraffic(D, bit_reversal_permutation(D))
    wl = HypercubeWorkload(cube, LAM, law)
    sample = wl.generate(horizon, rng=seed)
    res = simulate_hypercube_greedy(cube, sample)
    mask = sample.times >= 0.3 * horizon
    return float((res.delivery[mask] - sample.times[mask]).mean())


def run_twophase(horizon, seed):
    law = PermutationTraffic(D, bit_reversal_permutation(D))
    return TwoPhaseScheme(d=D, lam=LAM, law=law).measure_delay(horizon, rng=seed)


def run_experiment():
    cube = Hypercube(D)
    law = PermutationTraffic(D, bit_reversal_permutation(D))
    loads = direct_greedy_arc_loads(cube, law, LAM)
    t_direct_200 = run_direct(200.0, SEED)
    t_direct_600 = run_direct(600.0, SEED)
    t_two = run_twophase(200.0, SEED + 1)
    rows = [
        ("max arc load, direct greedy", float(loads.max()), "> 1: saturated"),
        ("max arc load, two-phase", LAM, "< 1: stable"),
        ("direct T (horizon 200)", t_direct_200, "grows with horizon"),
        ("direct T (horizon 600)", t_direct_600, "grows with horizon"),
        ("direct growth ratio", t_direct_600 / t_direct_200, "> 1.5: unstable"),
        ("two-phase T", t_two, "O(d), stable"),
    ]
    return rows


def test_e18_twophase(benchmark):
    benchmark.pedantic(lambda: run_twophase(80.0, SEED), rounds=3, iterations=1)
    rows = run_experiment()
    emit(
        "e18_twophase",
        format_table(
            ["quantity", "value", "expectation"],
            rows,
            title=f"E18  bit-reversal traffic (d={D}, lam={LAM}): direct drowns, "
            "two-phase mixes",
        ),
    )
    assert rows[0][1] > 1.0  # direct saturated
    assert rows[4][1] > 1.5  # direct delay growing with horizon
    assert rows[5][1] < 3.0 * D  # two-phase sane
