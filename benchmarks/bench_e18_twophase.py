"""E18 — §5 extension: two-phase mixing under adversarial traffic.

The paper's concluding remark suggests Valiant-style mixing for general
destination distributions, trading peak throughput for immunity to
traffic skew.  Regenerated table on bit-reversal permutation traffic:

* direct greedy: peak arc load ``lam 2^{d/2-1}`` — saturated at
  lam = 0.4 (d = 6), measured delays exploding with the horizon;
* two-phase: every arc's flow stays ~lam — stable, with delay near the
  uncontended 2x path length.

Thin wrapper over the registered ``hypercube-greedy-bitrev`` and
``hypercube-twophase-bitrev`` scenarios; the arc-load theory check
stays closed-form.
"""

from repro.analysis.tables import format_table
from repro.runner import get_scenario, measure, measure_many
from repro.schemes.twophase import direct_greedy_arc_loads
from repro.topology.hypercube import Hypercube
from repro.traffic.destinations import PermutationTraffic, bit_reversal_permutation

from _common import BENCH_JOBS, SEED, emit

D, LAM = 6, 0.4

DIRECT = get_scenario("hypercube-greedy-bitrev").replace(
    d=D, lam=LAM, replications=1, seed_policy="sequential", base_seed=SEED,
    warmup_fraction=0.3, cooldown_fraction=0.0,
)
TWOPHASE = get_scenario("hypercube-twophase-bitrev").replace(
    d=D, lam=LAM, horizon=200.0, replications=1, seed_policy="sequential",
    base_seed=SEED + 1,
)


def run_experiment():
    cube = Hypercube(D)
    law = PermutationTraffic(D, bit_reversal_permutation(D))
    loads = direct_greedy_arc_loads(cube, law, LAM)
    specs = [
        DIRECT.replace(name="e18-direct-h200", horizon=200.0),
        DIRECT.replace(name="e18-direct-h600", horizon=600.0),
        TWOPHASE.replace(name="e18-twophase"),
    ]
    m200, m600, m_two = measure_many(specs, jobs=BENCH_JOBS)
    rows = [
        ("max arc load, direct greedy", float(loads.max()), "> 1: saturated"),
        ("max arc load, two-phase", LAM, "< 1: stable"),
        ("direct T (horizon 200)", m200.mean_delay, "grows with horizon"),
        ("direct T (horizon 600)", m600.mean_delay, "grows with horizon"),
        ("direct growth ratio", m600.mean_delay / m200.mean_delay,
         "> 1.5: unstable"),
        ("two-phase T", m_two.mean_delay, "O(d), stable"),
    ]
    return rows


def test_e18_twophase(benchmark):
    benchmark.pedantic(
        lambda: measure(
            TWOPHASE.replace(name="e18-timing", horizon=80.0)
        ),
        rounds=3,
        iterations=1,
    )
    rows = run_experiment()
    emit(
        "e18_twophase",
        format_table(
            ["quantity", "value", "expectation"],
            rows,
            title=f"E18  bit-reversal traffic (d={D}, lam={LAM}): direct drowns, "
            "two-phase mixes",
        ),
    )
    assert rows[0][1] > 1.0  # direct saturated
    assert rows[4][1] > 1.5  # direct delay growing with horizon
    assert rows[5][1] < 3.0 * D  # two-phase sane
