"""E10 — §4: the butterfly (Props 14-17).

Regenerated tables:

* per-kind arc flows: ``lam(1-p)`` straight / ``lam p`` vertical
  (Prop 15);
* the delay sandwich Prop 14 <= T <= Prop 17 across a p-sweep — note
  the symmetric-in-p bounds and the bottleneck flip at p = 1/2;
* stability flips exactly when ``lam max(p, 1-p)`` crosses 1 (Prop 16).

The delay sweep is a thin wrapper over the registered
``butterfly-greedy-mid`` scenario; the Prop 15 flow check keeps the
direct scheme run (it needs the per-arc log, not a delay estimate).
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.core.greedy import GreedyButterflyScheme
from repro.runner import get_scenario, measure, measure_many
from repro.sim.measurement import arc_arrival_counts

from _common import BENCH_JOBS, SEED, emit

D = 4
P_SWEEP = [0.1, 0.3, 0.5, 0.7, 0.9]
RHO = 0.7
HORIZON = 1200.0

BASE = get_scenario("butterfly-greedy-mid").replace(
    d=D, rho=RHO, horizon=HORIZON, replications=1, seed_policy="sequential"
)


def run_rates(d, lam, p, horizon, seed):
    scheme = GreedyButterflyScheme(d=d, lam=lam, p=p)
    res = scheme.run(horizon, rng=seed, record_arc_log=True)
    rates = arc_arrival_counts(res.arc_log.arc, scheme.butterfly.num_arcs) / horizon
    kinds = np.arange(scheme.butterfly.num_arcs) % 2
    return float(rates[kinds == 0].mean()), float(rates[kinds == 1].mean())


def grid():
    return [
        BASE.replace(name=f"e10-p{p}", p=p, base_seed=SEED + 10 * i)
        for i, p in enumerate(P_SWEEP)
    ]


def run_experiment():
    # Prop 15 flows at an asymmetric p
    lam, p = 1.1, 0.3
    straight, vertical = run_rates(D, lam, p, HORIZON, SEED)
    rate_rows = [
        ("straight", straight, lam * (1 - p)),
        ("vertical", vertical, lam * p),
    ]
    # delay sandwich across p at fixed rho
    delay_rows = [
        (m.p, m.lam, m.lower_bound, m.mean_delay, m.upper_bound, m.within_bounds)
        for m in measure_many(grid(), jobs=BENCH_JOBS)
    ]
    return rate_rows, delay_rows


def test_e10_butterfly(benchmark):
    benchmark.pedantic(
        lambda: measure(
            BASE.replace(name="e10-timing", horizon=300.0, base_seed=SEED)
        ),
        rounds=3,
        iterations=1,
    )
    rate_rows, delay_rows = run_experiment()
    emit(
        "e10_butterfly",
        format_table(
            ["arc kind", "measured rate", "Prop15 theory"],
            rate_rows,
            title="E10a  Prop 15: butterfly per-arc flows (lam=1.1, p=0.3)",
        )
        + "\n\n"
        + format_table(
            ["p", "lam", "Prop14 lower", "measured T", "Prop17 upper", "inside"],
            delay_rows,
            title=f"E10b  Props 14/17 delay sandwich at rho={RHO} (d={D})",
        ),
    )
    for _, measured, theory in rate_rows:
        assert measured == pytest.approx(theory, rel=0.05)
    for _, _, lo, t, hi, _ in delay_rows:
        assert lo * 0.95 <= t <= hi * 1.05
    # symmetric p pairs give symmetric delays (same rho, mirrored kinds)
    t_03 = delay_rows[1][3]
    t_07 = delay_rows[3][3]
    assert abs(t_03 - t_07) / t_03 < 0.1
