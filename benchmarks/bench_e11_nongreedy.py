"""E11 — §2.3: non-greedy pipelined batching vs greedy routing.

The paper's motivating contrast: releasing one packet per node per
round and idling until the whole batch lands gives per-node service
time ~ Rd, hence stability only for ``rho < p/(Rd) = O(1/d)`` — while
greedy routing carries any ``rho < 1``.

Regenerated table: at a fixed modest load (rho = 0.4), the pipelined
scheme saturates (growing backlog, most packets undelivered) at every
d, while greedy routing's delay sits near its lower bound.  A second
table shows the pipelined scheme's measured stability threshold
estimate shrinking like 1/d.
"""

from repro.analysis.tables import format_table
from repro.core.greedy import GreedyHypercubeScheme
from repro.core.load import lam_for_load
from repro.schemes.valiant import PipelinedBatchScheme

from _common import SEED, emit

DIMS = [4, 5, 6, 7]
RHO, P = 0.4, 0.5
HORIZON = 400.0


def run_pipelined(d, lam, horizon, seed):
    return PipelinedBatchScheme(d=d, lam=lam, p=P).run(horizon, rng=seed)


def run_experiment():
    rows = []
    thresh_rows = []
    for i, d in enumerate(DIMS):
        lam = lam_for_load(RHO, P)
        res = run_pipelined(d, lam, HORIZON, SEED + i)
        greedy = GreedyHypercubeScheme(d=d, lam=lam, p=P)
        t_greedy = greedy.measure_delay(HORIZON, rng=SEED + 50 + i)
        frac_delivered = float(res.delivered_mask().mean())
        rows.append(
            (
                d,
                RHO,
                frac_delivered,
                res.final_backlog,
                t_greedy,
                greedy.delay_upper_bound(),
            )
        )
        # threshold estimate from a light-load run (measures Rd cleanly)
        light = run_pipelined(d, 0.02, HORIZON, SEED + 100 + i)
        scheme = PipelinedBatchScheme(d=d, lam=0.02, p=P)
        thresh_rows.append(
            (
                d,
                light.mean_round_duration(),
                scheme.approximate_stability_threshold(
                    light.mean_round_duration()
                ),
            )
        )
    return rows, thresh_rows


def test_e11_nongreedy(benchmark):
    benchmark.pedantic(
        lambda: run_pipelined(5, 0.8, 150.0, SEED), rounds=3, iterations=1
    )
    rows, thresh_rows = run_experiment()
    emit(
        "e11_nongreedy",
        format_table(
            [
                "d",
                "rho",
                "pipelined delivered frac",
                "pipelined backlog",
                "greedy T",
                "greedy bound",
            ],
            rows,
            title="E11a  §2.3 baseline drowns at rho = 0.4 while greedy cruises",
        )
        + "\n\n"
        + format_table(
            ["d", "round duration (Rd)", "stability threshold rho* = p/Rd"],
            thresh_rows,
            title="E11b  pipelined stability threshold shrinks like O(1/d)",
        ),
    )
    for d, _, frac, backlog, t_greedy, bound in rows:
        assert frac < 0.75  # pipelined leaves a large fraction stuck
        assert t_greedy <= bound * 1.05  # greedy is fine at the same load
    # threshold decreasing in d and well below 1
    ts = [r[2] for r in thresh_rows]
    assert all(t < 0.25 for t in ts)
    assert ts[-1] < ts[0]
