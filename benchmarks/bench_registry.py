"""Registry dispatch baseline: per-scenario wall time + dispatch overhead.

Emits ``benchmarks/results/BENCH_dispatch.json`` so the performance
trajectory of the plugin machinery finally has a tracked baseline:

* ``dispatch_s`` — time to resolve the scheme plugin through the
  registry and build the replication runner (``get_plugin(...).
  prepare(spec)``): the pure plugin-API overhead, paid once per
  replication set-up.  Best of ``DISPATCH_REPEATS`` timings.
* ``run_s`` — wall time of one replication (seeded, single process).
* ``validate_s`` — time to re-validate the spec through the
  scheme x network capability cross-product (``spec.replace()``).

Long-horizon scenarios are clamped to ``MAX_HORIZON`` so the whole
sweep stays minutes-scale; the clamp is recorded per scenario, so the
numbers are only comparable at equal ``horizon``.

Run with::

    python benchmarks/bench_registry.py          # or pytest benchmarks/
"""

import json
import time

from repro.rng import replication_seeds
from repro.runner import list_scenarios
from repro.sim.run_spec import run_spec

from _common import RESULTS_DIR

#: clamp for the heavy catalog cells (hypercube-greedy-heavy etc.)
MAX_HORIZON = 400.0
DISPATCH_REPEATS = 5


def _prepared(spec):
    from repro.plugins.registry import get_plugin

    return get_plugin(spec.scheme).prepare(spec)


def run_experiment():
    results = {}
    for spec in list_scenarios():
        spec1 = spec.replace(
            replications=1,
            horizon=min(spec.horizon, MAX_HORIZON),
        )
        t0 = time.perf_counter()
        spec1.replace(base_seed=spec1.base_seed)  # full re-validation
        validate_s = time.perf_counter() - t0

        dispatch_s = float("inf")
        for _ in range(DISPATCH_REPEATS):
            t0 = time.perf_counter()
            _prepared(spec1)
            dispatch_s = min(dispatch_s, time.perf_counter() - t0)

        seed = replication_seeds(spec1.base_seed, 1, spec1.seed_policy)[0]
        t0 = time.perf_counter()
        out = run_spec(spec1, seed)
        run_s = time.perf_counter() - t0

        results[spec.name] = {
            "network": spec1.network,
            "scheme": spec1.scheme,
            "discipline": spec1.discipline,
            "engine": spec1.engine,
            "horizon": spec1.horizon,
            "horizon_clamped": spec1.horizon != spec.horizon,
            "num_packets": out.num_packets,
            "validate_s": round(validate_s, 6),
            "dispatch_s": round(dispatch_s, 6),
            "run_s": round(run_s, 6),
        }
    return results


def emit_json(results):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_dispatch.json"
    payload = {
        "description": "per-scenario wall time and plugin-dispatch overhead "
        "(one replication, single process, seeded)",
        "scenarios": results,
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def test_dispatch_baseline():
    results = run_experiment()
    path = emit_json(results)
    # dispatch overhead must stay negligible next to the simulation
    # itself: prepare() does no sampling, so give it a loose ceiling
    for name, cell in results.items():
        assert cell["dispatch_s"] < 0.1, (name, cell)
        assert cell["run_s"] > 0.0
    # every registered scenario made it into the baseline
    assert len(results) == len(list_scenarios())
    print(f"\n[written to {path}]")


if __name__ == "__main__":
    path = emit_json(run_experiment())
    print(f"written {path}")
