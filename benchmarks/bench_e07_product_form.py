"""E7 — the product-form PS network behind Prop 12.

Walrand's theorem (quoted at Prop 12): under PS, network Q is product
form; each server holds n packets with probability ``(1-rho) rho^n``
and the mean total population is ``d 2^d rho/(1-rho)`` (eq. 13).

Regenerated table: measured PS population and per-arc occupancy pmf vs
the geometric prediction, plus the resulting Little's-law delay vs
Prop 12's ``dp/(1-rho)``.
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.core.greedy import GreedyHypercubeScheme
from repro.core.load import lam_for_load
from repro.queueing.mm1 import geometric_pmf
from repro.queueing.productform import hypercube_ps_mean_population
from repro.sim.measurement import PopulationTracker

from _common import SEED, emit

D, P, RHO = 4, 0.5, 0.7
HORIZON = 3000.0


def run_ps(horizon, seed):
    scheme = GreedyHypercubeScheme(d=D, lam=lam_for_load(RHO, P), p=P)
    return scheme, scheme.run(horizon, rng=seed, discipline="ps", record_arc_log=True)


def run_experiment():
    scheme, res = run_ps(HORIZON, SEED)
    pt = PopulationTracker.from_intervals(res.sample.times, res.delivery)
    measured_pop = pt.time_average(HORIZON * 0.3, HORIZON * 0.9)
    predicted_pop = hypercube_ps_mean_population(D, RHO)
    t_ps = res.delay_record().mean_delay()
    t_bound = scheme.delay_upper_bound()

    # per-arc occupancy distribution of one arc vs geometric
    arc0 = int(res.arc_log.arc[0])
    m = res.arc_log.arc == arc0
    occ = PopulationTracker.from_intervals(res.arc_log.t_in[m], res.arc_log.t_out[m])
    grid = np.linspace(HORIZON * 0.3, HORIZON * 0.9, 4000)
    samples = np.array([occ.at(t) for t in grid])
    pmf_rows = []
    for n in range(4):
        pmf_rows.append(
            (n, float(np.mean(samples == n)), float(geometric_pmf(RHO, n)))
        )
    summary = [
        ("mean population", measured_pop, predicted_pop),
        ("mean delay (PS)", t_ps, t_bound),
    ]
    return summary, pmf_rows


def test_e07_product_form(benchmark):
    benchmark.pedantic(lambda: run_ps(400.0, SEED), rounds=3, iterations=1)
    summary, pmf_rows = run_experiment()
    emit(
        "e07_product_form",
        format_table(
            ["quantity", "measured (PS sim)", "product-form theory"],
            summary,
            title=f"E7  PS network Q~ is product form (d={D}, rho={RHO}, p={P})",
        )
        + "\n\n"
        + format_table(
            ["n", "P[occupancy = n] measured", "(1-rho) rho^n"],
            pmf_rows,
            title="E7b  one server's occupancy pmf vs geometric",
        ),
    )
    measured_pop, predicted_pop = summary[0][1], summary[0][2]
    assert measured_pop == pytest.approx(predicted_pop, rel=0.15)
    t_ps, t_bound = summary[1][1], summary[1][2]
    # Little's law on the product form is exactly Prop 12's bound
    assert t_ps == pytest.approx(t_bound, rel=0.15)
    for _, measured, theory in pmf_rows:
        assert abs(measured - theory) < 0.05
