"""E6 — Lemmas 7/10, Prop 11: FIFO/PS sample-path domination.

The paper's proof device made executable: couple network Q under FIFO
and under PS on identical sample paths (same arrivals, same
position-indexed routing decisions) and verify

* every cumulative-departure curve ordering ``B(t) >= B~(t)``,
* pathwise population ordering ``N(t) <= N~(t)``,
* the mean-delay ordering that yields Prop 12.

Regenerated table: violation counts (must be 0) and the FIFO/PS mean
delays whose gap quantifies how much the product-form bound gives away.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.qnetwork import HypercubeQSpec
from repro.sim.feedforward import simulate_markovian
from repro.topology.hypercube import Hypercube

from _common import SEED, emit

CASES = [(3, 0.5, 0.6), (4, 0.5, 0.7), (4, 0.3, 0.8), (5, 0.5, 0.8)]


def run_case(d: int, p: float, rho: float, horizon: float, seed: int):
    cube = Hypercube(d)
    spec = HypercubeQSpec(cube, p)
    lam = rho / p
    times, arcs = spec.sample_external_arrivals(lam, horizon, rng=seed)
    fifo = simulate_markovian(spec, times, arcs, rng=seed + 1, record_decisions=True)
    ps = simulate_markovian(
        spec, times, arcs, discipline="ps", decisions=fifo.decisions
    )
    ef, ep = np.sort(fifo.exit_times), np.sort(ps.exit_times)
    violations = int(np.sum(ef > ep + 1e-9))
    t_fifo = float((fifo.exit_times - times).mean())
    t_ps = float((ps.exit_times - times).mean())
    return violations, t_fifo, t_ps, times.shape[0]


def run_experiment(horizon=600.0):
    rows = []
    for i, (d, p, rho) in enumerate(CASES):
        violations, t_fifo, t_ps, n = run_case(d, p, rho, horizon, SEED + 10 * i)
        rows.append((d, p, rho, n, violations, t_fifo, t_ps, t_ps / t_fifo))
    return rows


def test_e06_fifo_vs_ps(benchmark):
    benchmark.pedantic(
        lambda: run_case(4, 0.5, 0.7, 200.0, SEED), rounds=3, iterations=1
    )
    rows = run_experiment()
    emit(
        "e06_fifo_vs_ps",
        format_table(
            ["d", "p", "rho", "packets", "violations", "T fifo", "T ps", "ps/fifo"],
            rows,
            title="E6  Lemma 10 / Prop 11: coupled FIFO departures never trail PS",
        ),
    )
    for _, _, _, _, violations, t_fifo, t_ps, _ in rows:
        assert violations == 0
        assert t_fifo <= t_ps
