"""E2 — Prop 6: the stability region is exactly ``rho < 1``.

Regenerated series: mean delay vs ``rho`` across the saturation point.
Below 1 the delay stays within the Prop 12 bound; past 1 the measured
delay grows with the horizon (no steady state) — the table reports the
delay at two horizons and their ratio, which jumps above 1 exactly at
saturation.
"""

from repro.analysis.tables import format_table
from repro.core.bounds import greedy_delay_upper_bound
from repro.core.greedy import GreedyHypercubeScheme
from repro.core.load import lam_for_load

from _common import SEED, emit

D, P = 5, 0.5
RHOS = [0.2, 0.5, 0.8, 0.9, 0.95, 1.05]


def run_point(rho: float, horizon: float, seed: int) -> float:
    scheme = GreedyHypercubeScheme(d=D, lam=lam_for_load(rho, P), p=P)
    return scheme.run(horizon, rng=seed).delay_record().mean_delay(0.3, 0.0)


def run_experiment():
    rows = []
    for i, rho in enumerate(RHOS):
        t_short = run_point(rho, 400.0, SEED + i)
        t_long = run_point(rho, 1600.0, SEED + i)
        bound = (
            greedy_delay_upper_bound(D, lam_for_load(rho, P), P)
            if rho < 1
            else float("inf")
        )
        rows.append((rho, t_short, t_long, t_long / t_short, bound))
    return rows


def test_e02_stability(benchmark):
    benchmark.pedantic(lambda: run_point(0.8, 300.0, SEED), rounds=3, iterations=1)
    rows = run_experiment()
    emit(
        "e02_stability",
        format_table(
            ["rho", "T (horizon 400)", "T (horizon 1600)", "ratio", "Prop12 bound"],
            rows,
            title="E2  Prop 6: delay stays bounded for rho < 1, diverges past saturation",
        ),
    )
    for rho, _, t_long, ratio, bound in rows:
        if rho < 1.0:
            assert t_long <= bound * 1.1
            assert ratio < 1.5  # converged
        else:
            assert ratio > 2.0  # growing with horizon: unstable
