"""E2 — Prop 6: the stability region is exactly ``rho < 1``.

Regenerated series: mean delay vs ``rho`` across the saturation point.
Below 1 the delay stays within the Prop 12 bound; past 1 the measured
delay grows with the horizon (no steady state) — the table reports the
delay at two horizons and their ratio, which jumps above 1 exactly at
saturation.

Thin wrapper over the registered ``hypercube-greedy-mid`` scenario:
each (rho, horizon) cell is a derived spec (no cool-down trim — the
divergence near the horizon end is the signal here), fanned out in one
parallel batch.
"""

from repro.analysis.tables import format_table
from repro.runner import get_scenario, measure, measure_many

from _common import BENCH_JOBS, SEED, emit

D, P = 5, 0.5
RHOS = [0.2, 0.5, 0.8, 0.9, 0.95, 1.05]
HORIZONS = (400.0, 1600.0)

BASE = get_scenario("hypercube-greedy-mid").replace(
    d=D,
    p=P,
    replications=1,
    seed_policy="sequential",
    warmup_fraction=0.3,
    cooldown_fraction=0.0,
)


def grid():
    return [
        BASE.replace(
            name=f"e02-rho{rho}-h{int(horizon)}",
            rho=rho,
            horizon=horizon,
            base_seed=SEED + i,
        )
        for i, rho in enumerate(RHOS)
        for horizon in HORIZONS
    ]


def run_experiment():
    ms = measure_many(grid(), jobs=BENCH_JOBS)
    rows = []
    for k, rho in enumerate(RHOS):
        short, long = ms[2 * k], ms[2 * k + 1]
        bound = long.upper_bound if rho < 1 else float("inf")
        rows.append(
            (rho, short.mean_delay, long.mean_delay,
             long.mean_delay / short.mean_delay, bound)
        )
    return rows


def test_e02_stability(benchmark):
    benchmark.pedantic(
        lambda: measure(
            BASE.replace(name="e02-timing", rho=0.8, horizon=300.0,
                         base_seed=SEED)
        ),
        rounds=3,
        iterations=1,
    )
    rows = run_experiment()
    emit(
        "e02_stability",
        format_table(
            ["rho", "T (horizon 400)", "T (horizon 1600)", "ratio", "Prop12 bound"],
            rows,
            title="E2  Prop 6: delay stays bounded for rho < 1, diverges past saturation",
        ),
    )
    for rho, _, t_long, ratio, bound in rows:
        if rho < 1.0:
            assert t_long <= bound * 1.1
            assert ratio < 1.5  # converged
        else:
            assert ratio > 2.0  # growing with horizon: unstable
